// Package phylip implements the staged phylogenetic-tree pipeline of the
// paper's Phylip benchmark (Felsenstein's PHYLIP dnadist + fitch): five
// stages with tunable parameters in stages 1, 3 and 5 (Fig. 14):
//
//	stage 1  transition-probability model        — tunable ease
//	stage 2  load + preprocess sequences         — (expensive, untuned)
//	stage 3  distance matrix from the model      — tunable invarfrac, cvi
//	stage 4  tree initialization                 — (untuned)
//	stage 5  tree construction + branch fitting  — tunable power
//
// The observed data are pairwise substitution fractions generated from a
// hidden random tree through a saturating substitution model with hidden
// nuisance parameters; recovering a good tree requires inverting that model
// with well-chosen ease/invarfrac/cvi, then fitting branch lengths under
// the right least-squares weighting power. The default score is the sum of
// squares between tree distances and the distance matrix (lower is better).
package phylip

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
)

// Params are the tunables across the three tuned stages.
type Params struct {
	Ease      float64 // stage 1: substitution rate scale
	InvarFrac float64 // stage 3: fraction of invariant sites
	CVI       float64 // stage 3: rate-variation correction factor
	Power     float64 // stage 5: least-squares weighting exponent
}

// DefaultParams is the untuned configuration.
func DefaultParams() Params {
	return Params{Ease: 1, InvarFrac: 0, CVI: 1, Power: 0}
}

// Work-unit costs per stage; loading dominates, as in the paper.
const (
	WorkLoad  = 25.0
	WorkTrans = 0.5
	WorkDist  = 1.0
	WorkTree  = 2.0
)

// Dataset is one Phylip workload: observed substitution fractions plus the
// hidden true tree distances used only for quality reporting.
type Dataset struct {
	N     int
	PObs  [][]float64 // observed substitution fraction per species pair
	TrueD [][]float64 // ground-truth tree path distances
}

// GenDataset builds a workload of n species: a random tree defines true
// distances; observations pass through a saturating substitution model
// p = (1-invar) * (1 - exp(-d / ease)) with hidden per-dataset ease and
// invariant fraction, plus observation noise.
func GenDataset(seed int64, n int) Dataset {
	if n < 4 {
		panic("phylip: need at least 4 species")
	}
	r := rand.New(rand.NewSource(int64(dist.Mix(uint64(seed), 0x9472))))
	trueD := randomTreeDistances(r, n)

	hiddenEase := 0.5 + 1.5*r.Float64()
	hiddenInvar := 0.05 + 0.3*r.Float64()
	pobs := mat(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := (1 - hiddenInvar) * (1 - math.Exp(-trueD[i][j]/hiddenEase))
			p += r.NormFloat64() * 0.004
			p = math.Min(1-hiddenInvar-1e-4, math.Max(1e-5, p))
			pobs[i][j], pobs[j][i] = p, p
		}
	}
	return Dataset{N: n, PObs: pobs, TrueD: trueD}
}

// randomTreeDistances samples a random binary tree over n leaves with
// exponential branch lengths and returns the leaf-to-leaf path distances.
func randomTreeDistances(r *rand.Rand, n int) [][]float64 {
	// Build by sequential attachment: leaf i joins a random existing edge.
	type edge struct {
		a, b int
		w    float64
	}
	adj := map[int][]edge{}
	addEdge := func(a, b int, w float64) {
		adj[a] = append(adj[a], edge{a, b, w})
		adj[b] = append(adj[b], edge{b, a, w})
	}
	next := n // internal node ids from n upward
	bl := func() float64 { return 0.1 + r.ExpFloat64()*0.45 }
	addEdge(0, 1, bl())
	nodes := []int{0, 1}
	for leaf := 2; leaf < n; leaf++ {
		// Attach via a new internal node spliced next to a random node.
		host := nodes[r.Intn(len(nodes))]
		inner := next
		next++
		addEdge(host, inner, bl())
		addEdge(inner, leaf, bl())
		nodes = append(nodes, leaf, inner)
	}
	// BFS from every leaf for path distances.
	out := mat(n)
	for s := 0; s < n; s++ {
		distTo := map[int]float64{s: 0}
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj[v] {
				if _, ok := distTo[e.b]; !ok {
					distTo[e.b] = distTo[v] + e.w
					queue = append(queue, e.b)
				}
			}
		}
		for t := 0; t < n; t++ {
			out[s][t] = distTo[t]
		}
	}
	return out
}

func mat(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// TransMatrix is stage 1: the 4x4 nucleotide transition-probability model
// induced by ease at unit time (Jukes-Cantor form). It is the sample result
// variable aggregated with DEDUP: runs whose quantized matrices coincide
// are pruned to one.
func TransMatrix(ease float64) [4][4]float64 {
	if ease <= 0 {
		ease = 1e-3
	}
	var m [4][4]float64
	same := 0.25 + 0.75*math.Exp(-1/ease)
	diff := (1 - same) / 3
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				m[i][j] = same
			} else {
				m[i][j] = diff
			}
		}
	}
	return m
}

// QuantizeMatrix renders a transition matrix at 2-decimal precision — the
// DEDUP key for stage 1 (sample runs with indistinguishable models are
// duplicates).
func QuantizeMatrix(m [4][4]float64) string {
	return fmt.Sprintf("%.2f/%.2f", m[0][0], m[0][1])
}

// DistMatrix is stage 3: invert the substitution model to estimate
// evolutionary distances, d = -ease * cvi * ln(1 - p/(1-invarfrac)).
// Saturated pairs (p beyond the invertible range) are clamped to the
// largest finite estimate.
func DistMatrix(pobs [][]float64, p Params) [][]float64 {
	n := len(pobs)
	out := mat(n)
	ease := math.Max(p.Ease, 1e-3)
	invar := math.Min(0.95, math.Max(0, p.InvarFrac))
	cvi := math.Max(p.CVI, 1e-3)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			frac := pobs[i][j] / (1 - invar)
			var d float64
			if frac >= 1 {
				d = dMax
			} else {
				d = -ease * cvi * math.Log(1-frac)
				if d > dMax {
					d = dMax
				}
			}
			out[i][j], out[j][i] = d, d
		}
	}
	return out
}

// FourPointViolation measures how far a distance matrix is from being
// additive (tree-like): for every quartet {i,j,k,l}, the two largest of the
// three pairings of pairwise sums must be equal on a tree metric. The
// result is the mean relative gap between them — 0 for an exactly additive
// matrix. This is the internal stage-3 score: a well-inverted substitution
// model produces a near-additive matrix without ever looking at ground
// truth.
func FourPointViolation(d [][]float64) float64 {
	n := len(d)
	total, count := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				for l := k + 1; l < n; l++ {
					s1 := d[i][j] + d[k][l]
					s2 := d[i][k] + d[j][l]
					s3 := d[i][l] + d[j][k]
					max1, max2 := s1, s2
					if max2 > max1 {
						max1, max2 = max2, max1
					}
					if s3 > max1 {
						max1, max2 = s3, max1
					} else if s3 > max2 {
						max2 = s3
					}
					if max1 > 0 {
						total += (max1 - max2) / max1
						count++
					}
				}
			}
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Tree is an unrooted phylogenetic tree over n leaves (ids 0..n-1) with
// weighted edges; internal nodes have ids >= n.
type Tree struct {
	N     int
	Edges []TreeEdge
}

// TreeEdge is one weighted tree edge.
type TreeEdge struct {
	A, B int
	W    float64
}

// BuildTree is stage 5: neighbor joining over the distance matrix followed
// by weighted least-squares branch-length refinement with weight 1/d^power
// (Fitch-Margoliash). Higher power trusts short distances more.
func BuildTree(d [][]float64, power float64) Tree {
	t := neighborJoin(d)
	t.refine(d, power, 20)
	return t
}

// neighborJoin is the classic Saitou-Nei algorithm.
func neighborJoin(d [][]float64) Tree {
	n := len(d)
	if n < 3 {
		panic("phylip: neighbor joining needs >= 3 taxa")
	}
	// Working copies; active holds current node ids.
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	dm := map[[2]int]float64{}
	get := func(a, b int) float64 {
		if a > b {
			a, b = b, a
		}
		return dm[[2]int{a, b}]
	}
	set := func(a, b int, v float64) {
		if a > b {
			a, b = b, a
		}
		dm[[2]int{a, b}] = v
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			set(i, j, d[i][j])
		}
	}
	tree := Tree{N: n}
	next := n
	for len(active) > 3 {
		m := len(active)
		// Row sums.
		rs := make(map[int]float64, m)
		for _, a := range active {
			s := 0.0
			for _, b := range active {
				if a != b {
					s += get(a, b)
				}
			}
			rs[a] = s
		}
		// Minimize Q.
		bi, bj := -1, -1
		bestQ := math.Inf(1)
		for x := 0; x < m; x++ {
			for y := x + 1; y < m; y++ {
				a, b := active[x], active[y]
				q := float64(m-2)*get(a, b) - rs[a] - rs[b]
				if q < bestQ {
					bestQ, bi, bj = q, x, y
				}
			}
		}
		a, b := active[bi], active[bj]
		u := next
		next++
		la := 0.5*get(a, b) + (rs[a]-rs[b])/(2*float64(m-2))
		lb := get(a, b) - la
		tree.Edges = append(tree.Edges,
			TreeEdge{A: a, B: u, W: math.Max(la, 0)},
			TreeEdge{A: b, B: u, W: math.Max(lb, 0)})
		for _, k := range active {
			if k == a || k == b {
				continue
			}
			set(u, k, 0.5*(get(a, k)+get(b, k)-get(a, b)))
		}
		// Remove a, b; add u.
		na := active[:0]
		for _, k := range active {
			if k != a && k != b {
				na = append(na, k)
			}
		}
		active = append(na, u)
	}
	// Join the last three around one center.
	a, b, c := active[0], active[1], active[2]
	u := next
	la := 0.5 * (get(a, b) + get(a, c) - get(b, c))
	lb := 0.5 * (get(a, b) + get(b, c) - get(a, c))
	lc := 0.5 * (get(a, c) + get(b, c) - get(a, b))
	tree.Edges = append(tree.Edges,
		TreeEdge{A: a, B: u, W: math.Max(la, 0)},
		TreeEdge{A: b, B: u, W: math.Max(lb, 0)},
		TreeEdge{A: c, B: u, W: math.Max(lc, 0)})
	return tree
}

// refine runs coordinate-descent weighted least squares on branch lengths:
// for each edge, the optimal adjustment given the paths through it.
func (t *Tree) refine(d [][]float64, power float64, iters int) {
	n := t.N
	paths := t.pathEdges()
	for it := 0; it < iters; it++ {
		T := t.Distances()
		changed := false
		for e := range t.Edges {
			num, den := 0.0, 0.0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if !paths[i][j][e] {
						continue
					}
					w := 1.0
					if power != 0 {
						w = 1 / math.Pow(math.Max(d[i][j], 1e-3), power)
					}
					num += w * (d[i][j] - T[i][j])
					den += w
				}
			}
			if den == 0 {
				continue
			}
			delta := num / den
			nw := math.Max(t.Edges[e].W+delta, 0)
			if math.Abs(nw-t.Edges[e].W) > 1e-9 {
				t.Edges[e].W = nw
				changed = true
				// Keep T approximately current by full recompute next edge
				// round; cheap at these sizes.
				T = t.Distances()
			}
		}
		if !changed {
			break
		}
	}
}

// pathEdges[i][j][e] reports whether edge e lies on the i-j path.
func (t *Tree) pathEdges() [][][]bool {
	n := t.N
	adj := map[int][]int{} // node -> edge indices
	for e, ed := range t.Edges {
		adj[ed.A] = append(adj[ed.A], e)
		adj[ed.B] = append(adj[ed.B], e)
	}
	out := make([][][]bool, n)
	for i := range out {
		out[i] = make([][]bool, n)
	}
	for i := 0; i < n; i++ {
		// DFS from leaf i recording the edge path to every node.
		type frame struct {
			node int
			path []int
		}
		visited := map[int]bool{i: true}
		stack := []frame{{i, nil}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.node < n && f.node != i {
				mark := make([]bool, len(t.Edges))
				for _, e := range f.path {
					mark[e] = true
				}
				out[i][f.node] = mark
			}
			for _, e := range adj[f.node] {
				other := t.Edges[e].A
				if other == f.node {
					other = t.Edges[e].B
				}
				if !visited[other] {
					visited[other] = true
					p := append(append([]int(nil), f.path...), e)
					stack = append(stack, frame{other, p})
				}
			}
		}
	}
	return out
}

// Distances returns the leaf-to-leaf path-length matrix of the tree.
func (t *Tree) Distances() [][]float64 {
	n := t.N
	adj := map[int][]TreeEdge{}
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e)
		adj[e.B] = append(adj[e.B], TreeEdge{A: e.B, B: e.A, W: e.W})
	}
	out := mat(n)
	for s := 0; s < n; s++ {
		distTo := map[int]float64{s: 0}
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj[v] {
				if _, ok := distTo[e.B]; !ok {
					distTo[e.B] = distTo[v] + e.W
					queue = append(queue, e.B)
				}
			}
		}
		for u := 0; u < n; u++ {
			out[s][u] = distTo[u]
		}
	}
	return out
}

// SumOfSquares is Phylip's default score: Σ (d_ij - t_ij)² over pairs,
// lower is better. Used both as the internal tuning score (against the
// computed distance matrix) and the quality score (against the true
// distances).
func SumOfSquares(d [][]float64, t Tree) float64 {
	T := t.Distances()
	n := len(d)
	s := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := d[i][j] - T[i][j]
			s += diff * diff
		}
	}
	return s
}

// SaturatedEntries counts the pairs whose distance hit the saturation
// clamp in DistMatrix — the substitution model could not be inverted for
// them under the given parameters. A matrix with saturated entries is
// degenerate: its many equal clamped distances mimic additivity and fool
// tree-likeness scores, so tuning programs prune such samples.
func SaturatedEntries(d [][]float64) int {
	n := len(d)
	c := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d[i][j] >= dMax-1e-9 {
				c++
			}
		}
	}
	return c
}

// dMax is the saturation clamp of DistMatrix.
const dMax = 12.0

// NormalizedSS is the scale-free variant of SumOfSquares: the raw sum of
// squares divided by the squared mean off-diagonal distance. Comparing raw
// sums across parameter settings is biased — a small ease shrinks every
// distance and with it the absolute error — so tuning drives the
// normalized score instead.
func NormalizedSS(d [][]float64, t Tree) float64 {
	n := len(d)
	mean := 0.0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mean += d[i][j]
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	mean /= float64(pairs)
	if mean <= 0 {
		return math.Inf(1)
	}
	return SumOfSquares(d, t) / (mean * mean)
}

// ScaleFreeSS compares a tree against a reference distance matrix up to a
// global scale: it fits the least-squares optimal scale s for the tree
// distances and returns Σ (d_ij - s·t_ij)² / Σ d_ij². The substitution
// model leaves the absolute distance scale unidentifiable (ease and cvi
// multiply freely), so judging an estimated tree against the true tree must
// be scale-invariant; topology and relative branch lengths are what can be
// recovered.
func ScaleFreeSS(d [][]float64, t Tree) float64 {
	T := t.Distances()
	n := len(d)
	var dot, tt, dd float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dot += d[i][j] * T[i][j]
			tt += T[i][j] * T[i][j]
			dd += d[i][j] * d[i][j]
		}
	}
	if dd == 0 {
		return 0
	}
	s := 0.0
	if tt > 0 {
		s = dot / tt
	}
	ss := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := d[i][j] - s*T[i][j]
			ss += diff * diff
		}
	}
	return ss / dd
}

// Run executes stages 1-5 for one parameter configuration and returns the
// tree plus the distance matrix it was built from.
func Run(ds Dataset, p Params) (Tree, [][]float64) {
	_ = TransMatrix(p.Ease) // stage 1 (the model feeding stage 3's inversion)
	d := DistMatrix(ds.PObs, p)
	t := BuildTree(d, p.Power)
	return t, d
}

// Quality scores a tree against the hidden true distances (reporting
// only), up to the unidentifiable global scale.
func Quality(ds Dataset, t Tree) float64 {
	return ScaleFreeSS(ds.TrueD, t)
}
