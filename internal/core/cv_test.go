package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/agg"
	"repro/internal/dist"
	"repro/internal/strategy"
)

func TestCVFoldsShareParams(t *testing.T) {
	var mu sync.Mutex
	draws := map[int][]float64{} // group -> drawn x per fold
	run(t, New(Options{MaxPool: 16, Seed: 3}), func(p *P) error {
		_, err := p.Region(RegionSpec{
			Name: "cv", Samples: 4, CV: 3, Minimize: true,
			Score: func(sp *SP) float64 { return 0 },
		}, func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			mu.Lock()
			draws[sp.Index()] = append(draws[sp.Index()], x)
			mu.Unlock()
			return nil
		})
		return err
	})
	if len(draws) != 4 {
		t.Fatalf("groups = %d", len(draws))
	}
	seen := map[float64]bool{}
	for g, xs := range draws {
		if len(xs) != 3 {
			t.Fatalf("group %d ran %d folds", g, len(xs))
		}
		for _, x := range xs[1:] {
			if x != xs[0] {
				t.Fatalf("group %d folds drew different values: %v", g, xs)
			}
		}
		seen[xs[0]] = true
	}
	if len(seen) < 2 {
		t.Fatal("all groups drew the same value; groups must differ")
	}
}

func TestCVFoldIndicesComplete(t *testing.T) {
	var mu sync.Mutex
	folds := map[int]map[int]bool{}
	run(t, New(Options{MaxPool: 16, Seed: 4}), func(p *P) error {
		_, err := p.Region(RegionSpec{
			Name: "cv", Samples: 3, CV: 4, Minimize: true,
			Score: func(sp *SP) float64 { return 0 },
		}, func(sp *SP) error {
			f, k := sp.Fold()
			if k != 4 {
				return fmt.Errorf("k = %d", k)
			}
			mu.Lock()
			if folds[sp.Index()] == nil {
				folds[sp.Index()] = map[int]bool{}
			}
			folds[sp.Index()][f] = true
			mu.Unlock()
			return nil
		})
		return err
	})
	for g, fs := range folds {
		if len(fs) != 4 {
			t.Fatalf("group %d saw folds %v", g, fs)
		}
	}
}

func TestCVScoresAveragedAcrossFolds(t *testing.T) {
	run(t, New(Options{MaxPool: 16, Seed: 5}), func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "cv", Samples: 2, CV: 3, Minimize: true,
			// Score = fold index -> average (0+1+2)/3 = 1 for every group.
			Score: func(sp *SP) float64 {
				f, _ := sp.Fold()
				return float64(f)
			},
		}, func(sp *SP) error { return nil })
		if err != nil {
			return err
		}
		for g := 0; g < res.N(); g++ {
			if s := res.Score(g); math.Abs(s-1) > 1e-12 {
				return fmt.Errorf("group %d score = %g, want 1", g, s)
			}
		}
		return nil
	})
}

func TestCVCommitsFromFoldZeroOnly(t *testing.T) {
	run(t, New(Options{MaxPool: 16, Seed: 6}), func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "cv", Samples: 3, CV: 2, Minimize: true,
			Score: func(sp *SP) float64 { return 0 },
		}, func(sp *SP) error {
			f, _ := sp.Fold()
			sp.Commit("model", float64(f))
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("model") != 3 {
			return fmt.Errorf("Len = %d, want one commit per group", res.Len("model"))
		}
		for _, i := range res.Indices("model") {
			if v := res.MustValue("model", i).(float64); v != 0 {
				return fmt.Errorf("group %d retained fold %g's commit", i, v)
			}
		}
		return nil
	})
}

func TestCVWithoutCVSingleFold(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error {
			f, k := sp.Fold()
			if f != 0 || k != 1 {
				return fmt.Errorf("Fold = %d/%d", f, k)
			}
			return nil
		})
		return err
	})
}

func TestAutoSamplingDoubles(t *testing.T) {
	tuner := New(Options{MaxPool: 8, Seed: 7})
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "auto", AutoStart: 4, MaxSamples: 64, Minimize: true,
			Score: func(sp *SP) float64 {
				x, _ := sp.Get("x")
				return math.Abs(x.(float64) - 0.321)
			},
		}, func(sp *SP) error {
			sp.Commit("x", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		if err != nil {
			return err
		}
		if res.N() < 4 {
			return fmt.Errorf("final round had %d samples", res.N())
		}
		return nil
	})
	m := tuner.Metrics()
	if m.Rounds < 2 {
		t.Fatalf("auto-sampling ran %d rounds; doubling never happened", m.Rounds)
	}
	if m.Regions != 1 {
		t.Fatalf("Regions = %d", m.Regions)
	}
}

func TestAutoSamplingStopsAtCap(t *testing.T) {
	tuner := New(Options{MaxPool: 8, Seed: 8})
	maxSeen := 0
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "auto", AutoStart: 4, MaxSamples: 16, Minimize: true,
			// Score improves with every sample count (more samples -> better
			// best), so only the cap stops doubling.
			Score: func(sp *SP) float64 {
				x, _ := sp.Get("x")
				return math.Abs(x.(float64) - 0.5)
			},
		}, func(sp *SP) error {
			sp.Commit("x", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		if err != nil {
			return err
		}
		maxSeen = res.N()
		return nil
	})
	if maxSeen > 16 {
		t.Fatalf("cap exceeded: %d", maxSeen)
	}
}

func TestAutoSamplingKeepsBestRound(t *testing.T) {
	// With a deterministic score landscape the returned result must hold
	// the best score seen across rounds, not merely the last round's.
	run(t, New(Options{MaxPool: 8, Seed: 9}), func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "auto", AutoStart: 8, MaxSamples: 32, Minimize: true,
			Score: func(sp *SP) float64 {
				x, _ := sp.Get("x")
				return math.Abs(x.(float64) - 0.9)
			},
		}, func(sp *SP) error {
			sp.Commit("x", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		if err != nil {
			return err
		}
		if math.IsNaN(res.BestScore()) {
			return errors.New("no best score")
		}
		return nil
	})
}

func TestMCMCFeedbackImprovesOverRounds(t *testing.T) {
	// Compare best score of RAND vs MCMC after several same-named regions:
	// MCMC exploits feedback and should concentrate near the optimum.
	target := 0.777
	runStrategy := func(s strategy.Strategy, seed int64) float64 {
		tuner := New(Options{MaxPool: 8, Seed: seed})
		best := math.Inf(1)
		if err := tuner.Run(func(p *P) error {
			for round := 0; round < 6; round++ {
				res, err := p.Region(RegionSpec{
					Name: "opt", Samples: 12, Strategy: s, Minimize: true,
					Score: func(sp *SP) float64 {
						x, _ := sp.Get("x")
						return math.Abs(x.(float64) - target)
					},
				}, func(sp *SP) error {
					sp.Commit("x", sp.Float("x", dist.Uniform(0, 10)))
					return nil
				})
				if err != nil {
					return err
				}
				if bs := res.BestScore(); bs < best {
					best = bs
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return best
	}
	randWins, mcmcWins := 0, 0
	for seed := int64(0); seed < 11; seed++ {
		r := runStrategy(strategy.Rand(), seed)
		m := runStrategy(strategy.MCMC(strategy.MCMCOptions{Scale: 0.08}), seed)
		if m < r {
			mcmcWins++
		} else {
			randWins++
		}
	}
	if mcmcWins <= randWins {
		t.Fatalf("MCMC should usually beat RAND with feedback: mcmc=%d rand=%d", mcmcWins, randWins)
	}
}

func TestIncrementalAggregationSameResults(t *testing.T) {
	resultWith := func(incremental bool) (float64, []float64, int64) {
		tuner := New(Options{MaxPool: 8, Seed: 10, Incremental: incremental})
		var scalar float64
		var vec []float64
		run(t, tuner, func(p *P) error {
			res, err := p.Region(RegionSpec{
				Name: "r", Samples: 16,
				Aggregate: map[string]agg.Kind{"s": agg.Avg, "v": agg.MV},
			}, func(sp *SP) error {
				sp.Commit("s", float64(sp.Index()))
				pix := []float64{0, 1}
				if sp.Index() < 4 {
					pix[0] = 1
				}
				sp.Commit("v", pix)
				return nil
			})
			if err != nil {
				return err
			}
			scalar = res.Aggregated("s").(float64)
			vec = res.Aggregated("v").([]float64)
			return nil
		})
		return scalar, vec, tuner.Metrics().PeakRetained
	}
	s1, v1, retained1 := resultWith(false)
	s2, v2, retained2 := resultWith(true)
	if s1 != s2 {
		t.Fatalf("Avg differs: %g vs %g", s1, s2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("MV differs at %d", i)
		}
	}
	if retained2 >= retained1 {
		t.Fatalf("incremental mode should retain less: %d vs %d", retained2, retained1)
	}
}

func TestIncrementalKeepsUnaggregatedVariables(t *testing.T) {
	tuner := New(Options{MaxPool: 8, Seed: 11, Incremental: true})
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "r", Samples: 4,
			Aggregate: map[string]agg.Kind{"agg": agg.Max},
		}, func(sp *SP) error {
			sp.Commit("agg", float64(sp.Index()))
			sp.Commit("raw", float64(sp.Index())) // custom-aggregated by caller
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("raw") != 4 {
			return fmt.Errorf("raw Len = %d; custom variables must be retained", res.Len("raw"))
		}
		if res.Len("agg") != 0 {
			return fmt.Errorf("agg Len = %d; incremental variables must not be retained", res.Len("agg"))
		}
		if got := res.Aggregated("agg").(float64); got != 3 {
			return fmt.Errorf("Max = %g", got)
		}
		return nil
	})
}

func TestSchedulerMetricsExposed(t *testing.T) {
	tuner := New(Options{MaxPool: 2, Seed: 12})
	run(t, tuner, func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 10}, func(sp *SP) error { return nil })
		return err
	})
	m := tuner.Metrics()
	if m.Scheduler.Admitted < 10 {
		t.Fatalf("scheduler admitted %d", m.Scheduler.Admitted)
	}
	if m.Scheduler.PeakInUse > 2 {
		t.Fatalf("pool of 2 peaked at %d", m.Scheduler.PeakInUse)
	}
}

func TestDisabledSchedulerRaisesPeak(t *testing.T) {
	peak := func(disabled bool) int {
		tuner := New(Options{MaxPool: 2, Seed: 13, DisableScheduler: disabled})
		run(t, tuner, func(p *P) error {
			_, err := p.Region(RegionSpec{Name: "r", Samples: 32}, func(sp *SP) error {
				sp.Sync(func(*SyncView) {}) // force everyone to coexist
				return nil
			})
			return err
		})
		return tuner.Metrics().Scheduler.PeakInUse
	}
	on := peak(false)
	off := peak(true)
	if off <= on {
		t.Fatalf("disabling the scheduler should raise peak concurrency: on=%d off=%d", on, off)
	}
}

func TestRunPropagatesRootError(t *testing.T) {
	err := newTuner().Run(func(p *P) error { return errors.New("root") })
	if err == nil || err.Error() != "root" {
		t.Fatalf("err = %v", err)
	}
}
