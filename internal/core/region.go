package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/checkpoint"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/strategy"
)

// RegionSpec describes one sampling code region — the pair of @sampling and
// @aggregate calls plus everything the paper configures on them.
type RegionSpec struct {
	// Name identifies the region. Feedback-driven strategies (MCMC) and
	// auto-tuned sampling accumulate knowledge per region name, so reusing
	// a name across Region calls deliberately shares feedback.
	Name string
	// Samples is the number of sampling processes to spawn. Zero enables
	// auto-tuned sampling (Sec. IV-D): the runtime starts at AutoStart and
	// doubles until the best score stops improving; this requires Score.
	Samples int
	// AutoStart is the initial sample count for auto-tuned sampling.
	// Zero means 8.
	AutoStart int
	// MaxSamples caps auto-tuned sampling. Zero means 512.
	MaxSamples int
	// RelEps is the minimum relative score improvement that keeps
	// auto-tuned sampling doubling. Zero means 1e-3.
	RelEps float64
	// Strategy is the sampling strategy. Nil means strategy.Rand().
	Strategy strategy.Strategy
	// Aggregate maps sample result variables to built-in aggregation
	// strategies; their aggregates are available from Result.Aggregated.
	// Variables not listed (or listed as agg.Custom) are only collected
	// into the aggregation store for custom aggregation by the caller.
	Aggregate map[string]agg.Kind
	// Score, if set, scores one finished sampling process; it feeds
	// feedback-driven strategies, auto-tuned sampling, and Result.Best*.
	Score func(sp *SP) float64
	// Minimize declares the score direction (default: higher is better).
	Minimize bool
	// CV enables k-fold cross-validation (Sec. IV-A) when >= 2: each
	// sample becomes a sampling-and-validation group of CV processes that
	// share drawn parameter values but see different folds; their scores
	// are averaged. Commits are retained from fold 0 only.
	CV int
}

func (s RegionSpec) withDefaults() (RegionSpec, error) {
	if s.Name == "" {
		return s, errors.New("core: RegionSpec.Name is required")
	}
	if s.Samples < 0 {
		return s, fmt.Errorf("core: region %q: negative Samples", s.Name)
	}
	if s.Samples == 0 && s.Score == nil {
		return s, fmt.Errorf("core: region %q: auto-tuned sampling requires Score", s.Name)
	}
	if s.CV < 0 || s.CV == 1 {
		return s, fmt.Errorf("core: region %q: CV must be 0 or >= 2", s.Name)
	}
	if s.CV > 1 && s.Score == nil {
		return s, fmt.Errorf("core: region %q: cross-validation requires Score", s.Name)
	}
	if s.AutoStart == 0 {
		s.AutoStart = 8
	}
	if s.MaxSamples == 0 {
		s.MaxSamples = 512
	}
	if s.RelEps == 0 {
		s.RelEps = 1e-3
	}
	if s.Strategy == nil {
		s.Strategy = strategy.Rand()
	}
	for x, k := range s.Aggregate {
		if k == agg.Custom {
			continue
		}
		if _, err := agg.New(k); err != nil {
			return s, fmt.Errorf("core: region %q variable %q: %w", s.Name, x, err)
		}
	}
	return s, nil
}

// Region executes a sampling code region: it switches p into its tuning
// role, spawns the sampling processes, waits for them to commit, applies
// the built-in aggregations, and returns the aggregated view (rules
// [SAMPLING], [AGGR-S], [AGGR-T]).
//
// body runs once per sampling process, possibly concurrently; everything it
// touches must be either local to the body or safe for concurrent reads
// (e.g. the immutable inputs of the stage). Sample-level panics are
// contained and reported per sample; Region itself fails only for spec
// errors or if every sampling process failed.
func (p *P) Region(spec RegionSpec, body func(sp *SP) error) (*Result, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	t := p.t
	suppress := false
	if r := t.rec; r != nil {
		suppress = r.noteEvent(p, checkpoint.EvRegion, 0, spec.Name)
	}
	if !suppress {
		t.ctr.regions.Add(1)
		if ro := t.obsv.region(spec.Name); ro != nil {
			t0 := time.Now()
			defer ro.duration.ObserveSince(t0)
		}
		t.opts.Trace.add(Event{Kind: EvRegionStart, Region: spec.Name, PID: p.pid, Sample: -1})
		defer t.opts.Trace.add(Event{Kind: EvRegionEnd, Region: spec.Name, PID: p.pid, Sample: -1})
	}

	if spec.Samples > 0 {
		return p.runRound(spec, spec.Samples, 0, body)
	}

	// Auto-tuned sampling (Sec. IV-D): double until no further improvement.
	n := spec.AutoStart
	var best *Result
	bestScore := math.NaN()
	round := 0
	for {
		res, err := p.runRound(spec, n, round, body)
		if err != nil {
			if best != nil {
				return best, nil // keep the last good round
			}
			return nil, err
		}
		round++
		score := res.BestScore()
		if best == nil || improved(score, bestScore, spec.Minimize, spec.RelEps) {
			best, bestScore = res, score
			if n >= spec.MaxSamples || t.BudgetExceeded() {
				return best, nil
			}
			n *= 2
			if n > spec.MaxSamples {
				n = spec.MaxSamples
			}
			continue
		}
		return best, nil
	}
}

// improved reports whether next is a relative improvement over prev of more
// than eps in the given direction.
func improved(next, prev float64, minimize bool, eps float64) bool {
	if math.IsNaN(next) {
		return false
	}
	if math.IsNaN(prev) {
		return true
	}
	denom := math.Max(math.Abs(prev), 1e-12)
	if minimize {
		return (prev-next)/denom > eps
	}
	return (next-prev)/denom > eps
}

// regionState is the shared state of one sampling round. A detached round
// (one sampling process run by a remote worker via DetachedRunner) uses a
// stripped-down regionState with t == nil and det set; every field the
// sample hot path touches is present in both configurations.
type regionState struct {
	t       *Tuner
	spec    RegionSpec
	seed    int64
	n       int            // sample groups
	k       int            // folds per group (1 without CV)
	shape   *regionShape   // per-region-name symbols + SP pool
	syms    *store.Symbols // == shape.syms; the region's interned names
	exposed *store.Exposed // the store SP.Load reads (the tuner's, or a shipped snapshot)
	store   *store.Agg
	incs    map[string]agg.Incremental
	shared  []*svgShared   // per-group shared draws under CV
	ro      *regionObs     // nil when observability is off
	det     *detachedState // non-nil only for detached (worker-side) runs
	fb      []strategy.Feedback
	owner   *P  // tuning process running the round; receives its feedback
	execH   any // executor round handle; non-nil routes launches remotely

	// Per-round launch state, fixed before the first worker starts; workers
	// read them so launching a sample needs no closure allocation.
	ctx  context.Context
	body func(sp *SP) error
	wg   sync.WaitGroup

	mu         sync.Mutex
	scoreSum   []float64
	scoreCnt   []int
	arena      []pkv  // all parameter snapshots of the round, back to back
	spans      []span // per-group [offset, length) into arena
	haveParams []bool
	pruned     []bool
	errs       []error
	launched   int
	done       int
	total      int // launched target; reduced if the budget cuts the round
	barrier    *barrier

	// Incremental aggregation (Sec. IV-B): sampling processes copy their
	// results into a bounded shared ring; the tuning-process side drains it
	// and folds values into the aggregators, so at most ringCap values are
	// in flight instead of one per sample. When the region has exactly one
	// incremental variable, soleInc names its aggregator and ring entries are
	// the committed values themselves (no per-value pair allocation).
	ring     *agg.Ring
	ringDone chan struct{}
	soleInc  agg.Incremental
}

// span locates one group's parameter snapshot inside the round arena.
type span struct{ off, n int }

// newSP takes a sampling-process struct from the region's shape pool (or
// allocates the first time) and binds it to one attempt. Pooled SPs were
// fully reset by recycleSP, and their symbol-indexed slices are already
// sized for this region's variables from previous rounds.
func (rs *regionState) newSP(g, f, attempt int, slot *spSlot, sampler strategy.Sampler, sctx context.Context) *SP {
	sp, _ := rs.shape.pool.Get().(*SP)
	if sp == nil {
		sp = &SP{}
	}
	sp.rs = rs
	sp.group, sp.fold, sp.attempt = g, f, attempt
	sp.sampler = sampler
	sp.slot = slot
	sp.ctx = sctx
	if rs.shared != nil {
		sp.shared = rs.shared[g]
	}
	return sp
}

// recycleSP returns a finished sampling process to the shape pool. Never
// call it for an abandoned SP: the abandoned body goroutine may still be
// running and touching the struct.
func (rs *regionState) recycleSP(sp *SP) {
	sp.reset()
	rs.shape.pool.Put(sp)
}

// paramMap materializes group g's parameter snapshot as a name-keyed map.
func (rs *regionState) paramMap(g int) map[string]float64 {
	s := rs.spans[g]
	out := make(map[string]float64, s.n)
	for _, kv := range rs.arena[s.off : s.off+s.n] {
		out[rs.syms.Name(kv.id)] = kv.v
	}
	return out
}

// ringItem is one committed (variable, value) pair in flight.
type ringItem struct {
	x string
	v any
}

// ringCap bounds the in-flight results of incremental aggregation.
const ringCap = 8

// drainRing is the tuning-process side of incremental aggregation.
func (rs *regionState) drainRing() {
	defer close(rs.ringDone)
	for {
		items, ok := rs.ring.WaitDrain()
		if !ok {
			return
		}
		if rs.soleInc != nil {
			for _, v := range items {
				rs.soleInc.Add(v)
			}
			continue
		}
		for _, it := range items {
			item := it.(ringItem)
			rs.incs[item.x].Add(item.v)
		}
	}
}

// runRound executes one sampling round of n sample groups.
func (p *P) runRound(spec RegionSpec, n, round int, body func(sp *SP) error) (*Result, error) {
	t := p.t
	rec := t.rec
	ro := t.obsv.region(spec.Name)
	k := spec.CV
	if k < 2 {
		k = 1
	}
	// The incremental aggregators are built before anything else: agg.New is
	// the only fallible step of round setup, and on the recorded path it
	// must precede round admission so a spec error can never leak an
	// in-flight registration in the quiesce gate.
	incs := make(map[string]agg.Incremental)
	for x, kind := range spec.Aggregate {
		if kind == agg.Custom {
			continue
		}
		a, err := agg.New(kind)
		if err != nil {
			return nil, err
		}
		incs[x] = a
	}
	if rec == nil {
		t.ctr.rounds.Add(1)
		if ro != nil {
			ro.rounds.Inc()
		}
		t.opts.Trace.add(Event{Kind: EvRoundStart, Region: spec.Name, PID: p.pid, Round: round, Sample: -1, N: n})
	}

	// The tuning process pauses for the duration of the region (execution
	// model step 4): it hands its pool slot back so its sampling processes
	// can use it — Algorithm 1 adjusts poolSize around wait() the same way.
	t.release()
	defer t.acquire(sched.SpawnT, 0)

	var recSeq uint64
	if rec != nil {
		// Round admission through the quiesce gate (after the slot release
		// above — a pending checkpoint may block here until in-flight rounds
		// drain, and those rounds need the slot). A journaled round is
		// satisfied from the replay path without sampling anything.
		rep, seq, err := rec.enterRound(p, spec.Name, round, n, k)
		if err != nil {
			return nil, err
		}
		if rep != nil {
			return rec.replayRound(p, &spec, rep)
		}
		recSeq = seq
		t.ctr.rounds.Add(1)
		if ro != nil {
			ro.rounds.Inc()
		}
		t.opts.Trace.add(Event{Kind: EvRoundStart, Region: spec.Name, PID: p.pid, Round: round, Sample: -1, N: n})
	}

	// The region context carries the whole-round budget (FaultPolicy) on top
	// of the tuning process's own context; every per-sample deadline derives
	// from it, so cancelling either level drains the round.
	ctx := p.Context()
	if fp := t.opts.Fault; fp.RegionBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, fp.RegionBudget)
		defer cancel()
	}

	shape := t.shape(spec.Name)
	rs := &regionState{
		t:          t,
		spec:       spec,
		seed:       t.regionSeed(spec.Name, round),
		n:          n,
		k:          k,
		shape:      shape,
		syms:       shape.syms,
		ro:         ro,
		store:      store.NewAgg(),
		incs:       incs,
		scoreSum:   make([]float64, n),
		scoreCnt:   make([]int, n),
		spans:      make([]span, n),
		haveParams: make([]bool, n),
		pruned:     make([]bool, n),
		errs:       make([]error, n),
		total:      n * k,
	}
	rs.exposed = t.exposed
	rs.ctx = ctx
	rs.body = body
	if k > 1 {
		rs.shared = make([]*svgShared, n)
		for g := range rs.shared {
			rs.shared[g] = &svgShared{vals: make(map[string]float64)}
		}
	}
	rs.barrier = newBarrier(rs)
	if t.opts.Incremental && len(rs.incs) > 0 {
		if len(rs.incs) == 1 {
			for _, a := range rs.incs {
				rs.soleInc = a
			}
		}
		rs.ring = agg.NewRing(ringCap)
		if t.obsv != nil {
			rs.ring.Instrument(t.obsv.ringOcc, t.obsv.ringBatch)
		}
		rs.ringDone = make(chan struct{})
		go rs.drainRing()
	}

	fb := p.feedbackFor(spec.Name, spec.Minimize)
	rs.fb = fb
	rs.owner = p

	// Route the round through the configured executor when possible.
	// Cross-validation groups share draws fold-to-fold, so they stay local;
	// a region the executor declined once (BeginRound error, or a body that
	// turned out to use Sync) is skipped for the rest of the run.
	if ex := t.opts.Executor; ex != nil && k == 1 {
		if _, skip := t.execSkip.Load(spec.Name); !skip {
			h, err := ex.BeginRound(RoundTask{
				Job:      t.jobID,
				Region:   spec.Name,
				Seed:     rs.seed,
				Round:    round,
				N:        n,
				Feedback: fb,
				Spec:     spec,
				Body:     body,
				Exposed:  t.exposed,
			})
			if err != nil {
				t.execSkip.Store(spec.Name, struct{}{})
			} else {
				rs.execH = h
				defer ex.EndRound(h)
			}
		}
	}

launch:
	for g := 0; g < n; g++ {
		// A region always launches at least one sample group, even with
		// the budget already spent — otherwise a tight budget would
		// produce no result at all instead of a cheap one.
		if g > 0 && t.BudgetExceeded() {
			// Stop launching; un-launched groups count as pruned.
			rs.mu.Lock()
			for gg := g; gg < n; gg++ {
				rs.pruned[gg] = true
			}
			rs.total = rs.launched
			rs.mu.Unlock()
			rs.barrier.maybeRelease()
			break launch
		}
		var sampler strategy.Sampler
		if rs.execH == nil {
			// A dispatched sample's worker rebuilds this sampler from
			// (seed, g, n, fb) — Sampler is a pure function of them, so the
			// remote draws match these bit for bit.
			sampler = spec.Strategy.Sampler(rs.seed, g, n, fb)
		}
		for f := 0; f < k; f++ {
			if err := t.acquireCtx(ctx, sched.SpawnS, n-g); err != nil {
				// The region budget (or the caller's context) expired while
				// this request was queued: everything not yet launched fails
				// with the distinguished budget outcome, and the round
				// aggregates over whatever the launched samples commit.
				rs.mu.Lock()
				for gg := g; gg < n; gg++ {
					if rs.errs[gg] == nil && (gg > g || f == 0) {
						rs.errs[gg] = fmt.Errorf("%w: %v", ErrRegionBudget, err)
					}
				}
				rs.total = rs.launched
				rs.mu.Unlock()
				rs.barrier.maybeRelease()
				break launch
			}
			rs.mu.Lock()
			rs.launched++
			rs.mu.Unlock()
			rs.wg.Add(1)
			if rs.execH != nil {
				go rs.remoteWorker(g)
			} else {
				go rs.worker(g, f, sampler)
			}
		}
	}
	rs.wg.Wait()
	if rs.ring != nil {
		// All producers are done: flush the ring and wait for the drain
		// loop to fold the tail into the aggregators.
		rs.ring.Close()
		<-rs.ringDone
	}

	res, ferr := rs.finish()
	if rec != nil {
		rec.exitRound(p, recSeq, round, rs, res)
		rec.maybeAuto()
	}
	return res, ferr
}

// finish assembles the Result after all sampling processes of a round are
// done, records feedback, and updates the memory metric.
func (rs *regionState) finish() (*Result, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()

	scores := make([]float64, rs.n)
	for g := 0; g < rs.n; g++ {
		if rs.scoreCnt[g] == 0 {
			scores[g] = math.NaN()
			continue
		}
		scores[g] = rs.scoreSum[g] / float64(rs.scoreCnt[g])
	}

	// Feedback for future rounds of this region.
	var fb []strategy.Feedback
	for g := 0; g < rs.n; g++ {
		if !math.IsNaN(scores[g]) && rs.haveParams[g] {
			fb = append(fb, strategy.Feedback{Params: rs.paramMap(g), Score: scores[g]})
		}
	}
	rs.owner.addFeedback(rs.spec.Name, fb)

	// Memory metric: values retained in the store, aggregator state, and
	// the ring's high-water mark of in-flight results.
	retained := int64(rs.store.Total())
	for _, a := range rs.incs {
		retained += int64(a.Retained())
	}
	if rs.ring != nil {
		retained += int64(rs.ring.Peak())
	}
	rs.t.notePeakRetained(retained)

	aggregated := make(map[string]any, len(rs.incs))
	for x, a := range rs.incs {
		aggregated[x] = a.Result()
	}

	// Graceful degradation: a round with timed-out or failed samples still
	// aggregates over whatever committed; the shortfall is recorded in the
	// degradation counter and a trace event.
	failed, timeouts := 0, 0
	for g := 0; g < rs.n; g++ {
		if rs.errs[g] != nil {
			failed++
			if errors.Is(rs.errs[g], ErrSampleTimeout) || errors.Is(rs.errs[g], ErrRegionBudget) {
				timeouts++
			}
		}
	}
	if failed > 0 {
		rs.t.ctr.degraded.Add(1)
		if rs.ro != nil {
			rs.ro.degraded.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvRegionDegraded, Region: rs.spec.Name,
			Sample: -1, N: failed})
	}

	res := &Result{
		n:          rs.n,
		store:      rs.store,
		syms:       rs.syms,
		aggregated: aggregated,
		arena:      rs.arena,
		spans:      rs.spans,
		haveParams: rs.haveParams,
		scores:     scores,
		pruned:     rs.pruned,
		errs:       rs.errs,
		minimize:   rs.spec.Minimize,
		degraded:   failed > 0,
		timeouts:   timeouts,
	}

	if failed == rs.n && rs.n > 0 && !rs.t.opts.Fault.DegradeEmpty {
		return res, fmt.Errorf("core: region %q: every sampling process failed: %w",
			rs.spec.Name, errors.Join(rs.errs...))
	}
	return res, nil
}
