package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

// Property: for any sample count and pruning mask, the aggregation store
// holds exactly the unpruned samples' commits, at the right indices, and
// Result's pruned flags match the mask — the core region invariant
// (mirrors the semantics-level property test, but against the production
// runtime).
func TestPropertyRegionCommitsMatchMask(t *testing.T) {
	f := func(nRaw uint8, mask uint16, seed int64) bool {
		n := int(nRaw%12) + 1
		tuner := New(Options{MaxPool: 8, Seed: seed})
		ok := true
		err := tuner.Run(func(p *P) error {
			res, err := p.Region(RegionSpec{Name: "prop", Samples: n}, func(sp *SP) error {
				sp.Check(mask>>(sp.Index()%16)&1 == 0)
				sp.Commit("v", float64(sp.Index()))
				return nil
			})
			if err != nil {
				return err
			}
			want := 0
			for i := 0; i < n; i++ {
				pruned := mask>>(i%16)&1 == 1
				if res.Pruned(i) != pruned {
					ok = false
				}
				if !pruned {
					want++
					if v, has := res.Value("v", i); !has || v.(float64) != float64(i) {
						ok = false
					}
				} else if _, has := res.Value("v", i); has {
					ok = false
				}
			}
			if res.Len("v") != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under cross-validation, every fold of every group runs exactly
// once and all folds of a group share identical parameter draws.
func TestPropertyCVFoldsCompleteAndShared(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw%5) + 1
		k := int(kRaw%3) + 2
		tuner := New(Options{MaxPool: 16, Seed: seed})
		type draw struct {
			group, fold int
			x           float64
		}
		var mu sync.Mutex
		var draws []draw
		err := tuner.Run(func(p *P) error {
			_, err := p.Region(RegionSpec{
				Name: "cvprop", Samples: n, CV: k, Minimize: true,
				Score: func(sp *SP) float64 { return 0 },
			}, func(sp *SP) error {
				x := sp.Float("x", dist.Uniform(0, 1))
				fold, _ := sp.Fold()
				mu.Lock()
				draws = append(draws, draw{sp.Index(), fold, x})
				mu.Unlock()
				return nil
			})
			return err
		})
		if err != nil {
			return false
		}
		if len(draws) != n*k {
			return false
		}
		seen := map[string]bool{}
		groupX := map[int]float64{}
		for _, d := range draws {
			key := fmt.Sprintf("%d/%d", d.group, d.fold)
			if seen[key] {
				return false // fold ran twice
			}
			seen[key] = true
			if x, ok := groupX[d.group]; ok {
				if x != d.x {
					return false // folds of one SVG drew different values
				}
			} else {
				groupX[d.group] = d.x
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: total work equals the sum of per-sample work plus serial work,
// regardless of pruning (pruned samples still account the work they did
// before the check).
func TestPropertyWorkAccounting(t *testing.T) {
	f := func(nRaw uint8, serialRaw, perRaw uint8) bool {
		n := int(nRaw%8) + 1
		serial := float64(serialRaw%50) + 1
		per := float64(perRaw%20) + 1
		tuner := New(Options{MaxPool: 8, Seed: 1})
		err := tuner.Run(func(p *P) error {
			p.Work(serial)
			_, err := p.Region(RegionSpec{Name: "w", Samples: n}, func(sp *SP) error {
				sp.Work(per)
				return nil
			})
			return err
		})
		if err != nil {
			return false
		}
		want := serial + float64(n)*per
		got := tuner.WorkUsed()
		return got > want-0.1 && got < want+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
