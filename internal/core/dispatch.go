package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/store"
	"repro/internal/strategy"
)

// remoteWorker is the dispatcher-side counterpart of worker: one (group, 0)
// sampling slot whose attempts run on the configured Executor instead of
// this process. It owns a pool slot for the lifetime of the sample, exactly
// like a local worker, so Algorithm 1's occupancy accounting is identical
// whichever side the body runs on.
func (rs *regionState) remoteWorker(g int) {
	defer rs.wg.Done()
	slot := newHeldSlot()
	res, err, timedOut, unsupported := rs.runRemoteSP(g, slot)
	if unsupported {
		// The executor cannot run this sample (the body hit a Sync barrier,
		// or every worker is gone). Poison the region name so future rounds
		// skip dispatch, discard the partial attempt, and re-run the sample
		// on the in-process path — the seeded sampler makes the local re-run
		// draw exactly what a healthy remote run would have drawn.
		rs.t.execSkip.Store(rs.spec.Name, struct{}{})
		sampler := rs.spec.Strategy.Sampler(rs.seed, g, rs.n, rs.fb)
		if rs.runSP(rs.ctx, g, 0, slot, sampler, rs.body) {
			slot.release(rs.t)
			return // abandoned local attempt: neither slot nor sampler is safe to reuse
		}
		slot.release(rs.t)
		slotPool.Put(slot)
		if rec, ok := sampler.(strategy.Recycler); ok {
			rec.Recycle()
		}
		return
	}
	rs.applyExec(g, res, err, timedOut)
	slot.release(rs.t)
	slotPool.Put(slot)
}

// runRemoteSP drives the attempts of one dispatched sample through the
// FaultPolicy retry machinery: per-attempt deadlines via the context handed
// to Execute, retryable failures (including a worker dying with the sample
// in flight) re-dispatched with deterministic backoff, timeouts committed as
// the distinguished timeout outcome. It mirrors runSP's control flow so a
// sample's observable lifecycle — counters, trace events, retry schedule —
// does not depend on where its body ran.
func (rs *regionState) runRemoteSP(g int, slot *spSlot) (ExecResult, error, bool, bool) {
	t := rs.t
	ex := t.opts.Executor
	fp := t.opts.Fault
	for attempt := 1; ; attempt++ {
		t.ctr.samples.Add(1)
		var t0 time.Time
		if rs.ro != nil {
			t0 = time.Now()
		}
		actx := rs.ctx
		var cancel context.CancelFunc
		if fp.SampleTimeout > 0 {
			actx, cancel = context.WithTimeout(rs.ctx, fp.SampleTimeout)
		}
		res, err := ex.Execute(actx, rs.execH, g, attempt)
		if cancel != nil {
			cancel()
		}
		if rs.ro != nil {
			rs.ro.sampleDur.ObserveSince(t0)
		}
		if (err == nil && res.Unsupported) || errors.Is(err, ErrExecUnsupported) {
			return res, nil, false, true
		}
		// The attempt's work counts whether or not it succeeded, matching the
		// local path where Work accrues as the body runs.
		t.addWorkMilli(res.WorkMilli, true)
		timedOut := false
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			err = fmt.Errorf("%w: %v", ErrSampleTimeout, err)
			timedOut = true
		}
		if err == nil && res.Err != "" {
			rerr := errors.New(res.Err)
			if res.Retryable {
				err = Transient(rerr)
			} else {
				err = rerr
			}
		}
		if res.Panicked {
			rs.countPanic()
		}
		if res.Pruned {
			rs.countPruned()
		}
		if timedOut || err == nil || !IsRetryable(err) || attempt >= fp.attempts() || rs.ctx.Err() != nil {
			return res, err, timedOut, false
		}
		t.ctr.retried.Add(1)
		if rs.ro != nil {
			rs.ro.retried.Inc()
		}
		t.opts.Trace.add(Event{Kind: EvSampleRetry, Region: rs.spec.Name,
			Sample: g, Round: attempt, Err: traceErr(err)})
		timer := time.NewTimer(fp.backoff(rs.seed, g, attempt+1))
		select {
		case <-timer.C:
		case <-rs.ctx.Done():
			timer.Stop()
			err = fmt.Errorf("%w during retry backoff: %v", ErrSampleTimeout, rs.ctx.Err())
			return ExecResult{}, err, true, false
		}
	}
}

// applyExec commits a dispatched sample's externalized outcome into the
// round — the spDone of the remote path. Commits stream into the same
// incremental-aggregation ring and aggregation-store batches a local sample
// feeds, parameters land in the same arena, in the same per-sample order, so
// the finished round is indistinguishable from an all-local one.
func (rs *regionState) applyExec(g int, res ExecResult, err error, timedOut bool) {
	if timedOut {
		rs.noteOutcome(g, err, true, false, 0)
		rs.mu.Lock()
		if rs.errs[g] == nil {
			rs.errs[g] = err
		}
		rs.done++
		rs.mu.Unlock()
		rs.barrier.maybeRelease()
		return
	}
	rs.noteOutcome(g, err, false, res.Pruned, res.Score)

	ok := err == nil && !res.Pruned
	var kvbuf []store.KV
	var ringbuf []any
	if ok {
		for _, kv := range res.Commits {
			if _, inc := rs.incs[kv.Name]; inc && rs.ring != nil {
				if rs.soleInc != nil {
					ringbuf = append(ringbuf, kv.Value)
				} else {
					ringbuf = append(ringbuf, ringItem{x: kv.Name, v: kv.Value})
				}
				continue
			}
			kvbuf = append(kvbuf, store.KV{X: kv.Name, V: kv.Value})
		}
		if len(ringbuf) > 0 {
			// Outside rs.mu: the ring applies backpressure when the drain
			// loop falls behind, exactly as on the local flush path.
			rs.ring.PutBatch(ringbuf)
		}
	}

	rs.mu.Lock()
	switch {
	case err != nil:
		if rs.errs[g] == nil {
			rs.errs[g] = err
		}
	case res.Pruned:
		rs.pruned[g] = true
	default:
		if !rs.haveParams[g] {
			rs.haveParams[g] = true
			off := len(rs.arena)
			for _, p := range res.Params {
				rs.arena = append(rs.arena, pkv{id: rs.syms.Intern(p.Name), v: p.Value})
			}
			rs.spans[g] = span{off, len(rs.arena) - off}
		}
		for _, kv := range kvbuf {
			if a, inc := rs.incs[kv.X]; inc {
				a.Add(kv.V)
			}
		}
		if res.Scored {
			rs.scoreSum[g] += res.Score
			rs.scoreCnt[g]++
		}
	}
	rs.done++
	rs.mu.Unlock()
	if ok && len(kvbuf) > 0 {
		rs.store.PutBatch(g, kvbuf)
	}
	rs.barrier.maybeRelease()
}
