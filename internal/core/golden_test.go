package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// goldenTraceRun executes the reference faulty tuning program: one pool slot
// (so completion order is launch order), a logical trace clock, and a seeded
// fault schedule covering transient-retry, panic containment, timeout
// abandonment, and result corruption. Everything that reaches the trace is a
// pure function of the seeds.
func goldenTraceRun(t *testing.T) []byte {
	t.Helper()
	inj := faultinject.New(1234, faultinject.Config{
		HangRate: 0.10, PanicRate: 0.15, TransientRate: 0.25, CorruptRate: 0.15,
	})
	tr := NewTrace()
	tr.SetClock(counterClock())
	tuner := New(Options{
		MaxPool: 1, Seed: 1234, Trace: tr,
		Fault: FaultPolicy{
			SampleTimeout: 25 * time.Millisecond,
			MaxAttempts:   3,
			Backoff:       100 * time.Microsecond,
			DegradeEmpty:  true,
		},
	})
	run(t, tuner, func(p *P) error {
		_, err := p.Region(RegionSpec{
			Name: "golden", Samples: 10,
			Score: func(sp *SP) float64 { return sp.MustGet("v").(float64) },
		}, func(sp *SP) error {
			f := inj.At("golden", sp.Index(), sp.Attempt())
			if err := faultinject.Apply(sp.Context(), "golden", f); err != nil {
				return err
			}
			sp.Commit("v", f.CorruptFloat(float64(sp.Index())))
			return nil
		})
		return err
	})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceDeterminism pins the fault layer's replay guarantee: the
// same tuner seed and the same fault-injection seed produce a byte-identical
// JSONL trace — across runs in this process and against the checked-in
// golden file (which proves it holds across machines and Go versions too).
// Regenerate with GOLDEN_UPDATE=1 go test -run TestGoldenTraceDeterminism.
func TestGoldenTraceDeterminism(t *testing.T) {
	got := goldenTraceRun(t)
	if again := goldenTraceRun(t); !bytes.Equal(got, again) {
		t.Fatalf("two in-process runs diverged:\n--- first\n%s--- second\n%s", got, again)
	}

	path := filepath.Join("testdata", "golden_trace.jsonl")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from golden %s:\n--- got\n%s--- want\n%s", path, got, want)
	}
}
