package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dist"
)

// fakeExec runs dispatched samples through a DetachedRunner in-process —
// the executor contract without a wire. Knobs make it decline, fail, or
// flake on demand.
type fakeExec struct {
	runner *DetachedRunner

	declineBegin bool // BeginRound returns ErrExecUnsupported
	unsupported  bool // every Execute reports Unsupported
	flakyGroup   int  // this group's first attempt fails retryably (-1 off)

	begun    atomic.Int64
	executed atomic.Int64
	ended    atomic.Int64

	mu     sync.Mutex
	flaked map[int]bool
}

func newFakeExec() *fakeExec {
	return &fakeExec{runner: NewDetachedRunner(), flakyGroup: -1, flaked: make(map[int]bool)}
}

func (f *fakeExec) BeginRound(r RoundTask) (any, error) {
	f.begun.Add(1)
	if f.declineBegin {
		return nil, ErrExecUnsupported
	}
	return &r, nil
}

func (f *fakeExec) Execute(ctx context.Context, handle any, group, attempt int) (ExecResult, error) {
	f.executed.Add(1)
	r := handle.(*RoundTask)
	if f.unsupported {
		return ExecResult{Unsupported: true}, nil
	}
	if group == f.flakyGroup {
		f.mu.Lock()
		first := !f.flaked[group]
		f.flaked[group] = true
		f.mu.Unlock()
		if first {
			return ExecResult{}, Transient(errors.New("fake: connection reset"))
		}
	}
	return f.runner.Run(ctx, r.Spec, r.Body, SampleTask{
		Seed: r.Seed, N: r.N, Group: group, Attempt: attempt, Feedback: r.Feedback,
	}, r.Exposed), nil
}

func (f *fakeExec) EndRound(any) { f.ended.Add(1) }
func (f *fakeExec) Capacity() int {
	return 4
}

// sampleDump flattens one region result for comparison across runs.
func sampleDump(res *Result) string {
	s := ""
	for g := 0; g < res.N(); g++ {
		s += fmt.Sprintf("g%d params=%v", g, res.Params(g))
		if v, ok := res.Value("y", g); ok {
			s += fmt.Sprintf(" y=%v", v)
		}
		s += "\n"
	}
	return s
}

// runParityProgram runs the reference tuning program and returns its region
// dump. The body loads exposed state, draws, scores, and commits — every
// externalized channel the executor must round-trip.
func runParityProgram(t *testing.T, opts Options) string {
	t.Helper()
	tuner := New(opts)
	var dump string
	err := tuner.Run(func(p *P) error {
		p.Expose("bias", 0.125)
		res, err := p.Region(RegionSpec{
			Name:    "parity",
			Samples: 8,
			Score:   func(sp *SP) float64 { return sp.MustGet("y").(float64) },
		}, func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			k := sp.Int("k", dist.IntRange(1, 5))
			sp.Work(0.25)
			sp.Commit("y", x*float64(k)+sp.Load("bias").(float64))
			return nil
		})
		if err != nil {
			return err
		}
		dump = sampleDump(res)
		best := res.BestIndex()
		if best < 0 {
			return errors.New("no best sample")
		}
		dump += fmt.Sprintf("best=%d score=%v\n", best, res.MustValue("y", best))
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return dump
}

func TestExecutorParityWithLocal(t *testing.T) {
	local := runParityProgram(t, Options{MaxPool: 4, Seed: 7})
	ex := newFakeExec()
	remote := runParityProgram(t, Options{MaxPool: 4, Seed: 7, Executor: ex})
	if local != remote {
		t.Fatalf("executor run diverged from local run:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
	if ex.begun.Load() == 0 || ex.executed.Load() == 0 {
		t.Fatalf("executor unused: begun=%d executed=%d", ex.begun.Load(), ex.executed.Load())
	}
	if ex.begun.Load() != ex.ended.Load() {
		t.Fatalf("BeginRound/EndRound imbalance: %d vs %d", ex.begun.Load(), ex.ended.Load())
	}
}

func TestExecutorDeclineBeginFallsBack(t *testing.T) {
	local := runParityProgram(t, Options{MaxPool: 4, Seed: 11})
	ex := newFakeExec()
	ex.declineBegin = true
	got := runParityProgram(t, Options{MaxPool: 4, Seed: 11, Executor: ex})
	if got != local {
		t.Fatalf("fallback run diverged:\nlocal:\n%s\ngot:\n%s", local, got)
	}
	if ex.executed.Load() != 0 {
		t.Fatalf("Execute called after BeginRound declined")
	}
}

func TestExecutorUnsupportedPoisonsRegion(t *testing.T) {
	ex := newFakeExec()
	ex.unsupported = true
	tuner := New(Options{MaxPool: 4, Seed: 3, Executor: ex})
	runRegion := func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 4}, func(sp *SP) error {
			sp.Commit("v", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		if err != nil {
			return err
		}
		if res.N() != 4 || res.Len("v") != 4 {
			return fmt.Errorf("N=%d Len=%d", res.N(), res.Len("v"))
		}
		return nil
	}
	err := tuner.Run(func(p *P) error {
		if err := runRegion(p); err != nil {
			return err
		}
		begun := ex.begun.Load()
		if begun == 0 {
			return errors.New("executor never consulted")
		}
		// Second round of the same region: poisoned, so no new BeginRound.
		if err := runRegion(p); err != nil {
			return err
		}
		if ex.begun.Load() != begun {
			return fmt.Errorf("poisoned region dispatched again: begun %d -> %d", begun, ex.begun.Load())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestExecutorSyncBodyFallsBack(t *testing.T) {
	ex := newFakeExec()
	tuner := New(Options{MaxPool: 4, Seed: 5, Executor: ex})
	err := tuner.Run(func(p *P) error {
		var syncs atomic.Int64
		res, err := p.Region(RegionSpec{Name: "barrier", Samples: 3}, func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			sp.Sync(func(v *SyncView) { syncs.Add(1) })
			sp.Commit("v", x)
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("v") != 3 {
			return fmt.Errorf("Len=%d", res.Len("v"))
		}
		if syncs.Load() == 0 {
			return errors.New("Sync callback never ran")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, poisoned := tuner.execSkip.Load("barrier"); !poisoned {
		t.Fatalf("Sync region not poisoned for future rounds")
	}
}

func TestExecutorRetryableFailureRetries(t *testing.T) {
	ex := newFakeExec()
	ex.flakyGroup = 2
	opts := Options{MaxPool: 4, Seed: 7, Executor: ex, Fault: FaultPolicy{MaxAttempts: 3}}
	got := runParityProgram(t, opts)
	local := runParityProgram(t, Options{MaxPool: 4, Seed: 7})
	if got != local {
		t.Fatalf("retried run diverged from local run:\nlocal:\n%s\ngot:\n%s", local, got)
	}
}

func TestExecutorRetryCountsInMetrics(t *testing.T) {
	ex := newFakeExec()
	ex.flakyGroup = 0
	tuner := New(Options{MaxPool: 4, Seed: 9, Executor: ex, Fault: FaultPolicy{MaxAttempts: 2}})
	err := tuner.Run(func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 3}, func(sp *SP) error {
			sp.Commit("v", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("v") != 3 {
			return fmt.Errorf("Len=%d", res.Len("v"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m := tuner.Metrics(); m.Retried != 1 {
		t.Fatalf("Retried=%d, want 1", m.Retried)
	}
}

func TestExecutorWorkAccounting(t *testing.T) {
	ex := newFakeExec()
	tuner := New(Options{MaxPool: 4, Seed: 1, Executor: ex})
	err := tuner.Run(func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "w", Samples: 5}, func(sp *SP) error {
			sp.Work(0.5)
			sp.Commit("v", 1.0)
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := tuner.Metrics()
	if math.Abs(m.WorkUnits-2.5) > 1e-9 {
		t.Fatalf("WorkUnits=%v, want 2.5", m.WorkUnits)
	}
	if math.Abs(m.WorkParallel-2.5) > 1e-9 {
		t.Fatalf("WorkParallel=%v, want 2.5", m.WorkParallel)
	}
}
