package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/dist"
	"repro/internal/obs"
)

// TestObservabilityEndToEnd runs a small tuning program with a registry and
// trace installed and checks the full instrumentation surface: region and
// sample histograms, outcome counters, scheduler metrics, ring metrics,
// split counter, and the JSONL trace export.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	trace := NewTrace()
	tu := New(Options{Seed: 1, MaxPool: 4, Incremental: true, Obs: reg, Trace: trace})

	err := tu.Run(func(p *P) error {
		_, err := p.Region(RegionSpec{
			Name: "stage", Samples: 12,
			Aggregate: map[string]agg.Kind{"y": agg.Avg},
		}, func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			sp.Check(x < 0.9) // prune some samples
			if x > 0.85 {
				return errors.New("synthetic failure")
			}
			sp.Commit("y", x)
			return nil
		})
		if err != nil {
			return err
		}
		p.Split(func(child *P) error { return nil })
		return p.Wait()
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}

	m := tu.Metrics()
	done := reg.Counter(MetricSamples, "region", "stage", "result", "done").Value()
	pruned := reg.Counter(MetricSamples, "region", "stage", "result", "pruned").Value()
	failed := reg.Counter(MetricSamples, "region", "stage", "result", "failed").Value()
	if done+pruned+failed != m.Samples {
		t.Fatalf("outcome counters %d+%d+%d != samples %d", done, pruned, failed, m.Samples)
	}
	if pruned != m.Pruned {
		t.Fatalf("pruned counter = %d, metrics say %d", pruned, m.Pruned)
	}
	if got := reg.Counter(MetricRounds, "region", "stage").Value(); got != m.Rounds {
		t.Fatalf("rounds counter = %d, metrics say %d", got, m.Rounds)
	}
	if got := reg.Counter(MetricSplits).Value(); got != m.Splits {
		t.Fatalf("splits counter = %d, metrics say %d", got, m.Splits)
	}
	rh := reg.Histogram(MetricRegionDuration, obs.DurationBuckets(), "region", "stage")
	if rh.Count() != 1 {
		t.Fatalf("region duration observations = %d, want 1", rh.Count())
	}
	sh := reg.Histogram(MetricSampleDuration, obs.DurationBuckets(), "region", "stage")
	if int64(sh.Count()) != m.Samples {
		t.Fatalf("sample duration observations = %d, want %d", sh.Count(), m.Samples)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`wbtuner_region_duration_seconds_bucket{region="stage",le="+Inf"} 1`,
		`wbtuner_sched_wait_seconds_count{kind="sampling"}`,
		"wbtuner_sched_pool_occupancy",
		"wbtuner_ring_drain_batch_size_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The incremental ring actually moved the committed values.
	if got := reg.Histogram(MetricRingDrainBatch, obs.SizeBuckets()).Sum(); int64(got) != done {
		t.Fatalf("ring drained %v values, want %d", got, done)
	}
}

// TestTraceJSONL checks the trace export: timestamps present, one valid
// JSON object per line, kinds spelled out, scores only on sample-done.
func TestTraceJSONL(t *testing.T) {
	trace := NewTrace()
	tu := New(Options{Seed: 3, MaxPool: 2, Trace: trace})
	err := tu.Run(func(p *P) error {
		_, err := p.Region(RegionSpec{
			Name: "r", Samples: 4,
			Score: func(sp *SP) float64 { return sp.MustGet("v").(float64) },
		}, func(sp *SP) error {
			sp.Commit("v", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}

	var sb strings.Builder
	if err := trace.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != len(trace.Events()) {
		t.Fatalf("JSONL lines = %d, events = %d", len(lines), len(trace.Events()))
	}
	sawScore := false
	var prevAt int64
	for _, line := range lines {
		var e struct {
			At     int64    `json:"at"`
			Kind   string   `json:"kind"`
			Region string   `json:"region"`
			Sample int      `json:"sample"`
			Score  *float64 `json:"score"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if e.At == 0 {
			t.Fatalf("event missing timestamp: %q", line)
		}
		if e.At < prevAt {
			t.Fatalf("timestamps not monotone in collection order: %d after %d", e.At, prevAt)
		}
		prevAt = e.At
		if e.Kind == "sample-done" {
			if e.Score == nil {
				t.Fatalf("sample-done without score: %q", line)
			}
			sawScore = true
		} else if e.Score != nil {
			t.Fatalf("score on non-sample-done event: %q", line)
		}
	}
	if !sawScore {
		t.Fatal("no sample-done event in trace")
	}
	if lines[0] == "" || !strings.Contains(lines[0], `"kind":"region-start"`) {
		t.Fatalf("first event is not region-start: %q", lines[0])
	}
}
