package core

import (
	"runtime"
	"testing"

	"repro/internal/agg"
	"repro/internal/dist"
)

// The hot-path microbenchmarks measure the sample inner loop the way the
// paper's workloads drive it: a tight region with a cheap body that draws a
// few tunables in a loop, reads exposed inputs, and commits a scalar result.
// BenchmarkSamplingHotPath is the sampling-throughput benchmark recorded in
// BENCH_3.json and gated by CI; the steady-state benchmarks isolate one
// primitive each.

// hotPathSamples is the per-region sample count of the throughput benchmark:
// large enough to amortize round setup, small enough to run many rounds.
const hotPathSamples = 256

// BenchmarkSamplingHotPath runs one sampling-bound region per iteration:
// tight region, cheap body, MaxPool = NumCPU. The custom samples/sec metric
// is per sampling process, not per region.
func BenchmarkSamplingHotPath(b *testing.B) {
	tuner := New(Options{MaxPool: runtime.NumCPU(), Seed: 1, Incremental: true})
	d := dist.Uniform(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	err := tuner.Run(func(p *P) error {
		p.Expose("input", 0.5)
		for i := 0; i < b.N; i++ {
			_, err := p.Region(RegionSpec{
				Name:      "hot",
				Samples:   hotPathSamples,
				Aggregate: map[string]agg.Kind{"y": agg.Avg},
			}, func(sp *SP) error {
				acc := 0.0
				for j := 0; j < 16; j++ {
					acc += sp.Float("alpha", d) + sp.Float("beta", d)
					acc += sp.Load("input").(float64)
				}
				sp.Commit("y", acc)
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N*hotPathSamples)/b.Elapsed().Seconds(), "samples/sec")
}

// benchInSP runs fn once inside a single sampling process of a minimal
// region, for steady-state primitive benchmarks.
func benchInSP(b *testing.B, setup func(p *P), fn func(sp *SP)) {
	b.Helper()
	tuner := New(Options{MaxPool: runtime.NumCPU(), Seed: 1})
	err := tuner.Run(func(p *P) error {
		if setup != nil {
			setup(p)
		}
		_, err := p.Region(RegionSpec{Name: "micro", Samples: 1}, func(sp *SP) error {
			fn(sp)
			return nil
		})
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFloatSteadyState measures a repeated draw of an already-drawn
// tunable — the inner-loop read pattern of every kernel body.
func BenchmarkFloatSteadyState(b *testing.B) {
	d := dist.Uniform(0, 1)
	b.ReportAllocs()
	benchInSP(b, nil, func(sp *SP) {
		sp.Float("x", d) // first draw
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sp.Float("x", d)
		}
	})
}

// BenchmarkLoadSteadyState measures repeated reads of one exposed variable
// from inside a sampling process.
func BenchmarkLoadSteadyState(b *testing.B) {
	b.ReportAllocs()
	benchInSP(b, func(p *P) { p.Expose("input", 1.25) }, func(sp *SP) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sp.Load("input")
		}
	})
}

// BenchmarkCommitSteadyState measures re-committing one sample result
// variable (Commit overwrites, so this is the steady-state write path).
func BenchmarkCommitSteadyState(b *testing.B) {
	b.ReportAllocs()
	benchInSP(b, nil, func(sp *SP) {
		sp.Commit("y", 1.0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp.Commit("y", 2.0)
		}
	})
}
