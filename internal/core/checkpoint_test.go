package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dist"
	"repro/internal/leakcheck"
	"repro/internal/strategy"
)

// captureStore keeps a copy of every checkpoint saved through it, so a test
// can resume from any intermediate round boundary of a finished run.
type captureStore struct {
	checkpoint.MemStore
	mu    sync.Mutex
	saves [][]byte
}

func (c *captureStore) Save(label string, data []byte) error {
	c.mu.Lock()
	c.saves = append(c.saves, append([]byte(nil), data...))
	c.mu.Unlock()
	return c.MemStore.Save(label, data)
}

func (c *captureStore) snapshots() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.saves...)
}

// ckptProgram is a multi-round, splitting, feedback-driven tuning program
// whose complete observable behaviour — drawn params, committed values,
// scores, split-child results — folds into one deterministic dump string.
func ckptProgram(job *Tuner) (string, error) {
	var root, child bytes.Buffer
	runRounds := func(p *P, buf *bytes.Buffer, name string, rounds int) error {
		spec := RegionSpec{
			Name:     name,
			Samples:  4,
			Strategy: strategy.MCMC(strategy.MCMCOptions{}),
			Score:    func(sp *SP) float64 { return sp.MustGet("y").(float64) },
		}
		body := func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			sp.Work(0.25)
			sp.Commit("y", x*sp.Load("bias").(float64))
			return nil
		}
		for r := 0; r < rounds; r++ {
			p.Work(1)
			res, err := p.Region(spec, body)
			if err != nil {
				return err
			}
			for g := 0; g < res.N(); g++ {
				fmt.Fprintf(buf, "%s g%d x=%v y=%v\n", name, g, res.Params(g)["x"], res.MustValue("y", g))
			}
			fmt.Fprintf(buf, "%s best=%d score=%v\n", name, res.BestIndex(), res.BestScore())
		}
		return nil
	}
	err := job.Run(func(p *P) error {
		p.Expose("bias", 0.5)
		p.Split(func(c *P) error { return runRounds(c, &child, "child", 3) })
		if err := runRounds(p, &root, "root", 3); err != nil {
			return err
		}
		return p.Wait()
	})
	return root.String() + child.String(), err
}

// metricsLine folds the deterministic run counters (everything except
// scheduler contention stats) into a comparable string.
func metricsLine(m Metrics) string {
	return fmt.Sprintf("regions=%d rounds=%d samples=%d splits=%d work=%v ser=%v par=%v",
		m.Regions, m.Rounds, m.Samples, m.Splits, m.WorkUnits, m.WorkSerial, m.WorkParallel)
}

// TestCheckpointResumeParity is the in-process half of the crash-recovery
// story: a recorded run must be byte-identical to an unrecorded one, and a
// run resumed from ANY intermediate auto-checkpoint must reproduce the
// uninterrupted run's output and counters exactly.
func TestCheckpointResumeParity(t *testing.T) {
	defer leakcheck.Check(t)()

	ctl := New(Options{MaxPool: 4, Seed: 42})
	want, err := ckptProgram(ctl)
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	wantM := metricsLine(ctl.Metrics())

	cs := &captureStore{}
	rec := New(Options{MaxPool: 4, Seed: 42, Checkpoint: &CheckpointPolicy{Store: cs, Every: 1}})
	got, err := ckptProgram(rec)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	if got != want {
		t.Fatalf("recording perturbed the run:\nrecorded:\n%s\nplain:\n%s", got, want)
	}
	if gm := metricsLine(rec.Metrics()); gm != wantM {
		t.Fatalf("recording perturbed counters: %s != %s", gm, wantM)
	}
	if err := rec.SaveErr(); err != nil {
		t.Fatalf("auto-checkpoint write failed: %v", err)
	}

	snaps := cs.snapshots()
	if len(snaps) < 3 {
		t.Fatalf("expected several auto-checkpoints, got %d", len(snaps))
	}
	resumed := 0
	for i, data := range snaps {
		st, err := checkpoint.DecodeBytes(data)
		if err != nil {
			t.Fatalf("decode checkpoint %d: %v", i, err)
		}
		if st.Complete {
			continue
		}
		resumed++
		rt := NewRuntime(RuntimeOptions{MaxPool: 4})
		job, err := rt.ResumeJob(JobOptions{Name: "resumed"}, st)
		if err != nil {
			t.Fatalf("ResumeJob from checkpoint %d: %v", i, err)
		}
		out, err := ckptProgram(job)
		if err != nil {
			t.Fatalf("resumed run from checkpoint %d: %v", i, err)
		}
		if out != want {
			t.Fatalf("resume from checkpoint %d diverged:\nresumed:\n%s\nuninterrupted:\n%s", i, out, want)
		}
		if gm := metricsLine(job.Metrics()); gm != wantM {
			t.Fatalf("resume from checkpoint %d: counters %s != %s", i, gm, wantM)
		}
	}
	if resumed == 0 {
		t.Fatal("no resumable (non-complete) checkpoint was written")
	}
	// The run finished, so the last checkpoint written must be final.
	if st, err := checkpoint.DecodeBytes(snaps[len(snaps)-1]); err != nil || !st.Complete {
		t.Fatalf("last checkpoint: complete=%v err=%v, want final", st != nil && st.Complete, err)
	}
}

// TestCheckpointWriterRoundtrip drives the Tuner.Checkpoint writer surface:
// a mid-run-shaped state captured after completion encodes through an
// io.Writer and decodes back to an equivalent state.
func TestCheckpointWriterRoundtrip(t *testing.T) {
	defer leakcheck.Check(t)()
	job := New(Options{MaxPool: 4, Seed: 7, Checkpoint: &CheckpointPolicy{Store: &checkpoint.MemStore{}}})
	if _, err := ckptProgram(job); err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := job.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st, err := checkpoint.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("decode written checkpoint: %v", err)
	}
	if st.Seed != 7 || st.Complete {
		t.Fatalf("decoded state: seed=%d complete=%v, want seed=7 complete=false", st.Seed, st.Complete)
	}
	if len(st.Rounds) == 0 || len(st.Frontier) == 0 {
		t.Fatalf("decoded state is empty: %d rounds, %d frontier paths", len(st.Rounds), len(st.Frontier))
	}
}

// TestResumeFailurePaths covers the three refusal cases of ResumeJob —
// insufficient capacity, a completed checkpoint, and a double resume — and
// checks a refused checkpoint stays resumable elsewhere.
func TestResumeFailurePaths(t *testing.T) {
	defer leakcheck.Check(t)()

	cs := &captureStore{}
	src := New(Options{MaxPool: 4, Seed: 3, Checkpoint: &CheckpointPolicy{Store: cs, Every: 1}})
	if _, err := ckptProgram(src); err != nil {
		t.Fatalf("source run: %v", err)
	}
	snaps := cs.snapshots()
	mid, err := checkpoint.DecodeBytes(snaps[0])
	if err != nil || mid.Complete {
		t.Fatalf("first checkpoint: err=%v complete=%v", err, mid != nil && mid.Complete)
	}
	final, err := checkpoint.DecodeBytes(snaps[len(snaps)-1])
	if err != nil || !final.Complete {
		t.Fatalf("final checkpoint: err=%v complete=%v", err, final != nil && final.Complete)
	}

	// Capacity: a one-slot runtime is below the default MinSlots floor.
	small := NewRuntime(RuntimeOptions{MaxPool: 1})
	if _, err := small.ResumeJob(JobOptions{}, mid); !errors.Is(err, ErrResumeCapacity) {
		t.Fatalf("resume on 1-slot runtime: %v, want ErrResumeCapacity", err)
	}

	// Completed: a final checkpoint has nothing left to resume.
	rt := NewRuntime(RuntimeOptions{MaxPool: 4})
	if _, err := rt.ResumeJob(JobOptions{}, final); !errors.Is(err, ErrResumeCompleted) {
		t.Fatalf("resume of complete checkpoint: %v, want ErrResumeCompleted", err)
	}

	// The capacity refusal above must not have claimed the capture: the same
	// state resumes cleanly on an adequate runtime...
	job, err := rt.ResumeJob(JobOptions{Name: "ok"}, mid)
	if err != nil {
		t.Fatalf("resume after prior refusal: %v", err)
	}
	defer job.Close()
	// ...and only the successful resume claims it.
	if _, err := rt.ResumeJob(JobOptions{Name: "again"}, mid); !errors.Is(err, ErrResumeDuplicate) {
		t.Fatalf("second resume of one capture: %v, want ErrResumeDuplicate", err)
	}
}

// TestCheckpointSingleRunAndNotRecording pins the API edges: Checkpoint on
// an unrecorded job fails with ErrNotRecording, and a recorded job refuses
// a second Run (the journal keys rounds by split path, which a rerun would
// collide with).
func TestCheckpointSingleRunAndNotRecording(t *testing.T) {
	defer leakcheck.Check(t)()

	plain := New(Options{MaxPool: 4})
	var buf bytes.Buffer
	if err := plain.Checkpoint(&buf); !errors.Is(err, ErrNotRecording) {
		t.Fatalf("Checkpoint on unrecorded job: %v, want ErrNotRecording", err)
	}
	if _, err := plain.CheckpointState(); !errors.Is(err, ErrNotRecording) {
		t.Fatalf("CheckpointState on unrecorded job: %v, want ErrNotRecording", err)
	}

	job := New(Options{MaxPool: 4, Checkpoint: &CheckpointPolicy{Store: &checkpoint.MemStore{}}})
	noop := func(p *P) error { return nil }
	if err := job.Run(noop); err != nil {
		t.Fatalf("first run: %v", err)
	}
	err := job.Run(noop)
	if err == nil || !strings.Contains(err.Error(), "single Run") {
		t.Fatalf("second run on recorded job: %v, want single-Run refusal", err)
	}
}

// TestCheckpointDivergence resumes a checkpoint with a program whose control
// flow differs from the recorded one; the runtime must detect the mismatch
// and fail with ErrCheckpointDiverged rather than silently mixing histories.
func TestCheckpointDivergence(t *testing.T) {
	defer leakcheck.Check(t)()

	prog := func(job *Tuner, second string) error {
		return job.Run(func(p *P) error {
			for _, name := range []string{"a", second} {
				if _, err := p.Region(RegionSpec{Name: name, Samples: 2}, func(sp *SP) error {
					sp.Commit("v", 1.0)
					return nil
				}); err != nil {
					return err
				}
			}
			return nil
		})
	}

	cs := &captureStore{}
	src := New(Options{MaxPool: 4, Seed: 5, Checkpoint: &CheckpointPolicy{Store: cs, Every: 1}})
	if err := prog(src, "a2"); err != nil {
		t.Fatalf("source run: %v", err)
	}
	snaps := cs.snapshots()
	if len(snaps) < 2 {
		t.Fatalf("expected two auto-checkpoints, got %d", len(snaps))
	}
	// The second auto-checkpoint's frontier covers both recorded regions.
	st, err := checkpoint.DecodeBytes(snaps[1])
	if err != nil || st.Complete {
		t.Fatalf("checkpoint 1: err=%v complete=%v", err, st != nil && st.Complete)
	}

	rt := NewRuntime(RuntimeOptions{MaxPool: 4})
	job, err := rt.ResumeJob(JobOptions{}, st)
	if err != nil {
		t.Fatalf("ResumeJob: %v", err)
	}
	defer job.Close()
	if err := prog(job, "b"); !errors.Is(err, ErrCheckpointDiverged) {
		t.Fatalf("divergent resume: %v, want ErrCheckpointDiverged", err)
	}
}
