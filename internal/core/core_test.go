package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/agg"
	"repro/internal/dist"
)

func newTuner() *Tuner { return New(Options{MaxPool: 8, Seed: 1}) }

// run executes fn under a fresh tuner and fails the test on error.
func run(t *testing.T, tuner *Tuner, fn func(p *P) error) {
	t.Helper()
	if err := tuner.Run(fn); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRegionBasicCommitAndStore(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 10}, func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			sp.Commit("y", x*2)
			return nil
		})
		if err != nil {
			return err
		}
		if res.N() != 10 || res.Len("y") != 10 {
			return fmt.Errorf("N=%d Len=%d", res.N(), res.Len("y"))
		}
		for _, i := range res.Indices("y") {
			y := res.MustValue("y", i).(float64)
			x := res.Params(i)["x"]
			if math.Abs(y-2*x) > 1e-12 {
				return fmt.Errorf("sample %d: y=%g x=%g", i, y, x)
			}
		}
		return nil
	})
	m := tuner.Metrics()
	if m.Samples != 10 || m.Regions != 1 || m.Rounds != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestRegionDeterministicAcrossRuns(t *testing.T) {
	collect := func() []float64 {
		tuner := New(Options{MaxPool: 4, Seed: 99})
		var out []float64
		run(t, tuner, func(p *P) error {
			res, err := p.Region(RegionSpec{Name: "r", Samples: 6}, func(sp *SP) error {
				sp.Commit("v", sp.Float("x", dist.Uniform(0, 1)))
				return nil
			})
			if err != nil {
				return err
			}
			for _, i := range res.Indices("v") {
				out = append(out, res.MustValue("v", i).(float64))
			}
			return nil
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRegionSeedChangesDraws(t *testing.T) {
	draw := func(seed int64) float64 {
		tuner := New(Options{MaxPool: 4, Seed: seed})
		var v float64
		run(t, tuner, func(p *P) error {
			res, err := p.Region(RegionSpec{Name: "r", Samples: 1}, func(sp *SP) error {
				sp.Commit("v", sp.Float("x", dist.Uniform(0, 1)))
				return nil
			})
			if err != nil {
				return err
			}
			v = res.MustValue("v", 0).(float64)
			return nil
		})
		return v
	}
	if draw(1) == draw(2) {
		t.Fatal("different tuner seeds drew the same value")
	}
}

func TestFloatMemoizesDraws(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 5}, func(sp *SP) error {
			a := sp.Float("x", dist.Uniform(0, 1))
			b := sp.Float("x", dist.Uniform(0, 1))
			if a != b {
				return fmt.Errorf("second draw of x differed: %g vs %g", a, b)
			}
			return nil
		})
		return err
	})
}

func TestIntAndPick(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		opts := []string{"a", "b", "c"}
		_, err := p.Region(RegionSpec{Name: "r", Samples: 20}, func(sp *SP) error {
			k := sp.Int("k", dist.IntRange(2, 5))
			if k < 2 || k > 5 {
				return fmt.Errorf("k=%d out of range", k)
			}
			s := Pick(sp, "opt", opts)
			if s != "a" && s != "b" && s != "c" {
				return fmt.Errorf("bad pick %q", s)
			}
			return nil
		})
		return err
	})
}

func TestBuiltinAggregations(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name:    "r",
			Samples: 8,
			Aggregate: map[string]agg.Kind{
				"v": agg.Min, "w": agg.Max, "m": agg.Avg,
			},
		}, func(sp *SP) error {
			i := float64(sp.Index())
			sp.Commit("v", i)
			sp.Commit("w", i)
			sp.Commit("m", i)
			return nil
		})
		if err != nil {
			return err
		}
		if got := res.Aggregated("v").(float64); got != 0 {
			return fmt.Errorf("Min = %g", got)
		}
		if got := res.Aggregated("w").(float64); got != 7 {
			return fmt.Errorf("Max = %g", got)
		}
		if got := res.Aggregated("m").(float64); got != 3.5 {
			return fmt.Errorf("Avg = %g", got)
		}
		if res.Aggregated("absent") != nil {
			return errors.New("aggregate of unknown variable should be nil")
		}
		return nil
	})
}

func TestMajorityVoteVectors(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "r", Samples: 5,
			Aggregate: map[string]agg.Kind{"img": agg.MV},
		}, func(sp *SP) error {
			// Pixel 0 set by all, pixel 1 set by samples 0-2, pixel 2 never.
			v := []float64{1, 0, 0}
			if sp.Index() <= 2 {
				v[1] = 1
			}
			sp.Commit("img", v)
			return nil
		})
		if err != nil {
			return err
		}
		got := res.Aggregated("img").([]float64)
		want := []float64{1, 1, 0}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("MV pixel %d = %g", i, got[i])
			}
		}
		return nil
	})
}

func TestCheckPrunes(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 10}, func(sp *SP) error {
			sp.Check(sp.Index()%2 == 0) // prune odd samples
			sp.Commit("v", float64(sp.Index()))
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("v") != 5 {
			return fmt.Errorf("Len = %d, want 5", res.Len("v"))
		}
		for i := 0; i < 10; i++ {
			if res.Pruned(i) != (i%2 == 1) {
				return fmt.Errorf("Pruned(%d) = %v", i, res.Pruned(i))
			}
		}
		if _, ok := res.Value("v", 1); ok {
			return errors.New("pruned sample committed a value")
		}
		return nil
	})
	if m := tuner.Metrics(); m.Pruned != 5 {
		t.Fatalf("Pruned metric = %d", m.Pruned)
	}
}

func TestCheckFn(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 4}, func(sp *SP) error {
			sp.CheckFn(func() bool { return sp.Index() != 0 })
			sp.Commit("v", 1.0)
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("v") != 3 {
			return fmt.Errorf("Len = %d", res.Len("v"))
		}
		return nil
	})
}

func TestPanicContainment(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 6}, func(sp *SP) error {
			if sp.Index() == 3 {
				panic("boom")
			}
			sp.Commit("v", 1.0)
			return nil
		})
		if err != nil {
			return err // a single panicked sample must not fail the region
		}
		if res.Err(3) == nil || !strings.Contains(res.Err(3).Error(), "boom") {
			return fmt.Errorf("Err(3) = %v", res.Err(3))
		}
		if res.Len("v") != 5 {
			return fmt.Errorf("Len = %d", res.Len("v"))
		}
		return nil
	})
	if m := tuner.Metrics(); m.Panics != 1 {
		t.Fatalf("Panics metric = %d", m.Panics)
	}
}

func TestAllSamplesFailedIsRegionError(t *testing.T) {
	tuner := newTuner()
	err := tuner.Run(func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 3}, func(sp *SP) error {
			return errors.New("bad sample")
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "every sampling process failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestSampleBodyErrorRecorded(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error {
			if sp.Index() == 1 {
				return errors.New("deliberate")
			}
			sp.Commit("v", 1.0)
			return nil
		})
		if err != nil {
			return err
		}
		if res.Err(1) == nil || res.Err(0) != nil {
			return fmt.Errorf("errs = %v, %v", res.Err(0), res.Err(1))
		}
		return nil
	})
}

func TestExposeLoadAcrossScopes(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		p.Expose("imgSize", 640)
		p.ExposeIn("canny", "imgSize", 480)
		if got := p.Load("imgSize").(int); got != 640 {
			return fmt.Errorf("global imgSize = %d", got)
		}
		if got := p.LoadFrom("canny", "imgSize").(int); got != 480 {
			return fmt.Errorf("scoped imgSize = %d", got)
		}
		// Sampling processes can read the exposed store too.
		_, err := p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error {
			if got := sp.Load("imgSize").(int); got != 640 {
				return fmt.Errorf("sp imgSize = %d", got)
			}
			return nil
		})
		return err
	})
}

func TestLoadMissingPanics(t *testing.T) {
	tuner := newTuner()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing exposed variable")
		}
	}()
	_ = tuner.Run(func(p *P) error {
		p.Load("never-exposed")
		return nil
	})
}

func TestSplitRunsChildren(t *testing.T) {
	tuner := newTuner()
	var count int64
	run(t, tuner, func(p *P) error {
		for i := 0; i < 5; i++ {
			p.Split(func(child *P) error {
				atomic.AddInt64(&count, 1)
				_, err := child.Region(RegionSpec{Name: "inner", Samples: 2}, func(sp *SP) error {
					sp.Commit("v", 1.0)
					return nil
				})
				return err
			})
		}
		return p.Wait()
	})
	if count != 5 {
		t.Fatalf("split children ran %d times", count)
	}
	m := tuner.Metrics()
	if m.Splits != 5 || m.Regions != 5 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestSplitChildErrorPropagates(t *testing.T) {
	tuner := newTuner()
	err := tuner.Run(func(p *P) error {
		p.Split(func(child *P) error { return errors.New("child failed") })
		return nil // Run's implicit Wait must surface the child error
	})
	if err == nil || !strings.Contains(err.Error(), "child failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedSplits(t *testing.T) {
	var leaves int64
	run(t, newTuner(), func(p *P) error {
		for i := 0; i < 3; i++ {
			p.Split(func(c1 *P) error {
				for j := 0; j < 3; j++ {
					c1.Split(func(c2 *P) error {
						atomic.AddInt64(&leaves, 1)
						return nil
					})
				}
				return nil
			})
		}
		return nil
	})
	if leaves != 9 {
		t.Fatalf("leaves = %d", leaves)
	}
}

func TestSyncBarrier(t *testing.T) {
	var barrierCount int64
	var arrivedAtBarrier int64
	run(t, New(Options{MaxPool: 16, Seed: 1}), func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 6}, func(sp *SP) error {
			sp.Commit("partial", float64(sp.Index()))
			sp.Sync(func(v *SyncView) {
				atomic.AddInt64(&barrierCount, 1)
				atomic.StoreInt64(&arrivedAtBarrier, int64(v.Count()))
				for i := 0; i < v.Count(); i++ {
					if _, ok := v.Value(i, "partial"); !ok {
						t.Error("barrier callback cannot see pre-barrier commit")
					}
				}
			})
			sp.Commit("final", 1.0)
			return nil
		})
		return err
	})
	if barrierCount != 1 {
		t.Fatalf("barrier callback ran %d times", barrierCount)
	}
	if arrivedAtBarrier != 6 {
		t.Fatalf("barrier saw %d processes", arrivedAtBarrier)
	}
}

func TestSyncWithPrunedProcesses(t *testing.T) {
	// Pruned processes stop counting toward the barrier: the remaining
	// processes must still be released.
	var saw int64
	run(t, New(Options{MaxPool: 16, Seed: 1}), func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 8}, func(sp *SP) error {
			sp.Check(sp.Index() < 4) // half the processes die before the barrier
			sp.Sync(func(v *SyncView) { atomic.StoreInt64(&saw, int64(v.Count())) })
			sp.Commit("v", 1.0)
			return nil
		})
		if err != nil {
			return err
		}
		if res.Len("v") != 4 {
			return fmt.Errorf("Len = %d", res.Len("v"))
		}
		return nil
	})
	if saw != 4 {
		t.Fatalf("barrier saw %d live processes, want 4", saw)
	}
}

func TestSyncBarrierLargerThanPool(t *testing.T) {
	// 12 sampling processes, pool of 4: without slot hand-back at the
	// barrier this deadlocks.
	run(t, New(Options{MaxPool: 4, Seed: 1}), func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 12}, func(sp *SP) error {
			sp.Sync(func(*SyncView) {})
			return nil
		})
		return err
	})
}

func TestDoubleSync(t *testing.T) {
	var first, second int64
	run(t, New(Options{MaxPool: 16, Seed: 1}), func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 4}, func(sp *SP) error {
			sp.Sync(func(v *SyncView) { atomic.AddInt64(&first, 1) })
			sp.Sync(func(v *SyncView) { atomic.AddInt64(&second, 1) })
			return nil
		})
		return err
	})
	if first != 1 || second != 1 {
		t.Fatalf("barrier generations ran %d/%d times", first, second)
	}
}

func TestScoringAndBest(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{
			Name: "r", Samples: 16, Minimize: true,
			Score: func(sp *SP) float64 {
				x, _ := sp.Get("x")
				v := x.(float64)
				return (v - 0.5) * (v - 0.5)
			},
		}, func(sp *SP) error {
			sp.Commit("x", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		})
		if err != nil {
			return err
		}
		bi := res.BestIndex()
		if bi < 0 {
			return errors.New("no best index")
		}
		best := res.BestScore()
		for i := 0; i < res.N(); i++ {
			if s := res.Score(i); !math.IsNaN(s) && s < best {
				return fmt.Errorf("BestScore %g not minimal (sample %d scored %g)", best, i, s)
			}
		}
		if bp := res.BestParams(); bp == nil || math.Abs(bp["x"]-0.5) > 0.5 {
			return fmt.Errorf("BestParams = %v", bp)
		}
		return nil
	})
}

func TestRegionSpecValidation(t *testing.T) {
	cases := []RegionSpec{
		{},                              // no name
		{Name: "r", Samples: -1},        // negative samples
		{Name: "r"},                     // auto without Score
		{Name: "r", Samples: 2, CV: 1},  // CV=1
		{Name: "r", Samples: 2, CV: -2}, // negative CV
		{Name: "r", Samples: 2, CV: 3},  // CV without Score
		{Name: "r", Samples: 2, Aggregate: map[string]agg.Kind{"x": "bogus"}},
	}
	tuner := newTuner()
	for i, spec := range cases {
		err := tuner.Run(func(p *P) error {
			_, err := p.Region(spec, func(sp *SP) error { return nil })
			if err == nil {
				return fmt.Errorf("case %d: spec accepted: %+v", i, spec)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkAccounting(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		p.Work(10)
		_, err := p.Region(RegionSpec{Name: "r", Samples: 4}, func(sp *SP) error {
			sp.Work(2.5)
			return nil
		})
		return err
	})
	if got := tuner.WorkUsed(); math.Abs(got-20) > 0.01 {
		t.Fatalf("WorkUsed = %g, want 20", got)
	}
	if tuner.BudgetExceeded() {
		t.Fatal("no budget configured, must never be exceeded")
	}
}

func TestBudgetCutsLaunches(t *testing.T) {
	tuner := New(Options{MaxPool: 1, Seed: 1, Budget: 5})
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 100}, func(sp *SP) error {
			sp.Work(1)
			sp.Commit("v", 1.0)
			return nil
		})
		if err != nil {
			return err
		}
		if n := res.Len("v"); n >= 100 || n < 5 {
			return fmt.Errorf("budget of 5 ran %d samples", n)
		}
		return nil
	})
	if !tuner.BudgetExceeded() {
		t.Fatal("budget should be exceeded")
	}
}

func TestNegativeWorkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTuner().AddWork(-1)
}
