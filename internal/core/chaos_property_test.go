package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// The pool-drain property: whatever faults a region suffers — delays, hangs,
// panics, transient failures, corruption — after Run returns, the scheduler
// pool occupancy is zero and no runtime goroutine is left behind. This is the
// invariant that makes graceful degradation safe to rely on: a degraded
// region never poisons the next one.
func TestChaosPoolAlwaysDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property test is slow under -short")
	}
	defer leakcheck.Check(t)()

	property := func(seed int64, delayR, hangR, panicR, transientR uint8, pool, samples uint8) bool {
		// Map raw fuzz-ish inputs into valid chaos space: rates sum < 1,
		// pool in [1, 6], samples in [1, 12].
		cfg := faultinject.Config{
			DelayRate:     float64(delayR%25) / 100,
			HangRate:      float64(hangR%25) / 100,
			PanicRate:     float64(panicR%25) / 100,
			TransientRate: float64(transientR%25) / 100,
			MaxDelay:      2 * time.Millisecond,
		}
		inj := faultinject.New(seed, cfg)
		tuner := New(Options{
			MaxPool: 1 + int(pool%6),
			Seed:    seed,
			Fault: FaultPolicy{
				SampleTimeout: 20 * time.Millisecond,
				MaxAttempts:   2,
				Backoff:       100 * time.Microsecond,
				DegradeEmpty:  true,
			},
		})
		n := 1 + int(samples%12)
		err := tuner.Run(func(p *P) error {
			_, err := p.Region(RegionSpec{Name: "chaos", Samples: n}, func(sp *SP) error {
				f := inj.At("chaos", sp.Index(), sp.Attempt())
				if err := faultinject.Apply(sp.Context(), "chaos", f); err != nil {
					return err
				}
				sp.Commit("v", f.CorruptFloat(float64(sp.Index())))
				return nil
			})
			return err
		})
		if err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		if got := tuner.sched.InUse(); got != 0 {
			t.Logf("seed %d: pool occupancy %d after Run, want 0", seed, got)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// The barrier variant of the drain property: regions that rendezvous mid-body
// drain too, even when hung samplers are purged from the barrier.
func TestChaosBarrierDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property test is slow under -short")
	}
	defer leakcheck.Check(t)()

	for seed := int64(1); seed <= 6; seed++ {
		inj := faultinject.New(seed, faultinject.Config{
			HangRate: 0.25, TransientRate: 0.25, MaxDelay: time.Millisecond,
		})
		tuner := New(Options{
			MaxPool: 4, Seed: seed,
			Fault: FaultPolicy{
				SampleTimeout: 20 * time.Millisecond,
				MaxAttempts:   2,
				Backoff:       100 * time.Microsecond,
				DegradeEmpty:  true,
			},
		})
		err := tuner.Run(func(p *P) error {
			_, err := p.Region(RegionSpec{Name: "chaos-sync", Samples: 6}, func(sp *SP) error {
				f := inj.At("chaos-sync", sp.Index(), sp.Attempt())
				if err := faultinject.Apply(sp.Context(), "chaos-sync", f); err != nil {
					return err
				}
				sp.Sync(func(v *SyncView) {})
				sp.Commit("v", 1.0)
				return nil
			})
			return err
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := tuner.sched.InUse(); got != 0 {
			t.Fatalf("seed %d: pool occupancy %d after Run, want 0", seed, got)
		}
	}
}

// A permanently wedged, context-ignoring sampler is the worst case: its
// goroutine cannot be reclaimed until it returns, but the region must still
// complete and, once the body gives up on its own, the runtime must be fully
// drained. The sampler here blocks on a plain channel (ignoring SP.Context)
// that the test closes after the region completes degraded.
func TestContextIgnoringSamplerEventuallyDrains(t *testing.T) {
	defer leakcheck.Check(t)()

	unwedge := make(chan struct{})
	tuner := New(Options{
		MaxPool: 2, Seed: 17,
		Fault: FaultPolicy{SampleTimeout: 15 * time.Millisecond},
	})
	var res *Result
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "wedged", Samples: 3}, func(sp *SP) error {
			if sp.Index() == 1 {
				<-unwedge // ignores its context entirely
				return fmt.Errorf("woke up after abandonment")
			}
			sp.Commit("v", 1.0)
			return nil
		})
		return err
	})
	if got := res.Len("v"); got != 2 {
		t.Fatalf("survivors committed %d, want 2", got)
	}
	if !res.TimedOut(1) {
		t.Fatal("wedged sampler not reported as timeout")
	}
	if got := tuner.sched.InUse(); got != 0 {
		t.Fatalf("pool occupancy %d after Run, want 0", got)
	}
	// Only now let the abandoned body return; leakcheck then proves the
	// goroutine actually exits rather than lingering in the runtime.
	close(unwedge)
}
