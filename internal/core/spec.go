package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"time"
)

// This file defines JobSpec: the declarative, serializable description of
// one tuning job. Where JobOptions is the in-process assembly struct a
// Runtime consumes, a JobSpec is what a control plane persists, queues,
// arbitrates, and restarts: every field is plain data, the program is named
// rather than passed as a closure, and the encoding is versioned exactly
// like the checkpoint codec so a spec written today stays readable (or is
// refused with a typed error) by tomorrow's binary. A spec fully determines
// a job — running the same spec at the same seed produces byte-identical
// results whether it was admitted through a jobs manager or handed straight
// to Runtime.NewJobFromSpec.

// Job-spec errors. Decode failures wrap ErrSpecVersion or ErrSpecCorrupt
// (mirroring checkpoint.ErrCheckpointVersion/ErrCorrupt); validation
// failures wrap ErrSpecInvalid.
var (
	// ErrSpecVersion reports a job spec written by an unknown (usually
	// newer) codec version.
	ErrSpecVersion = errors.New("core: unsupported job-spec version")
	// ErrSpecCorrupt reports structurally invalid job-spec data: bad magic,
	// truncation, hash mismatch, or malformed body.
	ErrSpecCorrupt = errors.New("core: corrupt job-spec data")
	// ErrSpecInvalid reports a spec that parsed but cannot describe a job
	// (missing name or program, unknown priority class, negative bounds).
	ErrSpecInvalid = errors.New("core: invalid job spec")
)

// SpecVersion is the current job-spec codec version. Bump it on any
// incompatible change to the encoded layout; decoders refuse other versions
// outright rather than guessing.
const SpecVersion = 1

// specMagic prefixes every encoded spec.
const specMagic = "WBJS"

// PriorityClass orders jobs in an admission queue: priorities govern who
// enters the running set, while weighted shares (JobSpec.Share) keep
// governing pool slots within it. The zero value is PriorityNormal.
type PriorityClass int8

const (
	// PriorityLow yields to every other class; use it for scavenger work.
	PriorityLow PriorityClass = iota - 1
	// PriorityNormal is the default class.
	PriorityNormal
	// PriorityHigh preempts queued lower classes at every admission
	// boundary (running jobs are never preempted).
	PriorityHigh
)

// String returns the class label used in metrics and JSON.
func (c PriorityClass) String() string {
	switch c {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return fmt.Sprintf("class(%d)", int8(c))
}

// Valid reports whether c is a known class.
func (c PriorityClass) Valid() bool {
	return c >= PriorityLow && c <= PriorityHigh
}

// ParsePriorityClass parses a class label; "" means PriorityNormal.
func ParsePriorityClass(s string) (PriorityClass, error) {
	switch s {
	case "low":
		return PriorityLow, nil
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	}
	return 0, fmt.Errorf("%w: unknown priority class %q", ErrSpecInvalid, s)
}

// MarshalJSON encodes the class as its label.
func (c PriorityClass) MarshalJSON() ([]byte, error) {
	if !c.Valid() {
		return nil, fmt.Errorf("%w: priority class %d", ErrSpecInvalid, int8(c))
	}
	return json.Marshal(c.String())
}

// UnmarshalJSON accepts a class label ("low", "normal", "high" or "").
func (c *PriorityClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	p, err := ParsePriorityClass(s)
	if err != nil {
		return err
	}
	*c = p
	return nil
}

// FaultSpec is the serializable form of FaultPolicy — the same knobs minus
// nothing: every FaultPolicy field is already plain data. Durations encode
// as nanoseconds in JSON.
type FaultSpec struct {
	SampleTimeout time.Duration `json:"sample_timeout,omitempty"`
	RegionBudget  time.Duration `json:"region_budget,omitempty"`
	MaxAttempts   int           `json:"max_attempts,omitempty"`
	Backoff       time.Duration `json:"backoff,omitempty"`
	BackoffFactor float64       `json:"backoff_factor,omitempty"`
	MaxBackoff    time.Duration `json:"max_backoff,omitempty"`
	DegradeEmpty  bool          `json:"degrade_empty,omitempty"`
}

// Policy converts the spec into the runtime FaultPolicy.
func (f FaultSpec) Policy() FaultPolicy {
	return FaultPolicy{
		SampleTimeout: f.SampleTimeout,
		RegionBudget:  f.RegionBudget,
		MaxAttempts:   f.MaxAttempts,
		Backoff:       f.Backoff,
		BackoffFactor: f.BackoffFactor,
		MaxBackoff:    f.MaxBackoff,
		DegradeEmpty:  f.DegradeEmpty,
	}
}

// CheckpointSpec asks the hosting control plane to record and periodically
// checkpoint the job. The store and label are deployment concerns the
// manager supplies; the spec only carries the data that must survive a
// restart to re-create the policy identically.
type CheckpointSpec struct {
	// Every is the auto-checkpoint period in completed rounds. Zero means 1.
	Every int `json:"every,omitempty"`
	// MinSlots is the scheduler-capacity floor recorded in checkpoints
	// (see CheckpointPolicy.MinSlots). Zero means 2.
	MinSlots int `json:"min_slots,omitempty"`
}

// JobSpec declaratively describes one tuning job: who it belongs to, how it
// is arbitrated (priority class for entering the running set, share and cap
// within it, per-tenant quota identity), and what it runs (a registered
// program name plus string arguments, a seed, a budget, fault and
// checkpoint policies). It is the unit a jobs manager queues, persists, and
// resumes.
type JobSpec struct {
	// SpecVersion is the spec layout version; zero means the current
	// SpecVersion. Decoders refuse versions they do not know.
	SpecVersion int `json:"spec_version,omitempty"`
	// Name uniquely identifies the job within a manager and labels its
	// metrics. It doubles as a persistence label, so it must not contain
	// path separators or "..".
	Name string `json:"name"`
	// Tenant is the quota and rate-limit identity. Empty means the default
	// (unquota'd) tenant.
	Tenant string `json:"tenant,omitempty"`
	// Class is the admission-queue priority class.
	Class PriorityClass `json:"class,omitempty"`
	// Program names the registered tuning program the job runs.
	Program string `json:"program"`
	// Args parameterize the program (scene names, stage sizes, ...); the
	// program factory parses them. Encoded sorted by key, so a spec's bytes
	// are canonical.
	Args map[string]string `json:"args,omitempty"`
	// Seed makes the job reproducible: a spec plus its seed fully
	// determines the job's results.
	Seed int64 `json:"seed"`
	// Budget, when positive, bounds the job's total work units.
	Budget float64 `json:"budget,omitempty"`
	// Incremental enables incremental aggregation (Sec. IV-B).
	Incremental bool `json:"incremental,omitempty"`
	// Share is the job's weight in the scheduler's fair admission once
	// running. Zero means 1.
	Share int `json:"share,omitempty"`
	// MaxParallel hard-caps the job's concurrently held pool slots. Zero
	// means no cap.
	MaxParallel int `json:"max_parallel,omitempty"`
	// Fault overrides the runtime's default fault policy when non-nil.
	Fault *FaultSpec `json:"fault,omitempty"`
	// Checkpoint asks for checkpoint recording when non-nil.
	Checkpoint *CheckpointSpec `json:"checkpoint,omitempty"`
}

// Validate reports whether the spec can describe a job. All failures wrap
// ErrSpecInvalid.
func (s *JobSpec) Validate() error {
	if s.SpecVersion != 0 && s.SpecVersion != SpecVersion {
		return fmt.Errorf("%w: spec version %d (this binary speaks %d)",
			ErrSpecVersion, s.SpecVersion, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("%w: empty name", ErrSpecInvalid)
	}
	if len(s.Name) > 128 || strings.ContainsAny(s.Name, "/\\") || strings.Contains(s.Name, "..") {
		return fmt.Errorf("%w: name %q (must be a plain label: no separators, no \"..\", at most 128 bytes)",
			ErrSpecInvalid, s.Name)
	}
	if s.Program == "" {
		return fmt.Errorf("%w: empty program", ErrSpecInvalid)
	}
	if !s.Class.Valid() {
		return fmt.Errorf("%w: priority class %d", ErrSpecInvalid, int8(s.Class))
	}
	if s.Share < 0 {
		return fmt.Errorf("%w: negative share", ErrSpecInvalid)
	}
	if s.MaxParallel < 0 {
		return fmt.Errorf("%w: negative max_parallel", ErrSpecInvalid)
	}
	if s.Budget < 0 || math.IsNaN(s.Budget) || math.IsInf(s.Budget, 0) {
		return fmt.Errorf("%w: budget %v", ErrSpecInvalid, s.Budget)
	}
	if c := s.Checkpoint; c != nil && (c.Every < 0 || c.MinSlots < 0) {
		return fmt.Errorf("%w: negative checkpoint bound", ErrSpecInvalid)
	}
	return nil
}

// Options converts the spec into the JobOptions a Runtime consumes. The
// checkpoint policy is not included: its store and label are supplied by
// whatever manages the job (see CheckpointSpec).
func (s *JobSpec) Options() JobOptions {
	jo := JobOptions{
		Name:        s.Name,
		Seed:        s.Seed,
		Incremental: s.Incremental,
		Budget:      s.Budget,
		Share:       s.Share,
		MaxParallel: s.MaxParallel,
	}
	if s.Fault != nil {
		fp := s.Fault.Policy()
		jo.Fault = &fp
	}
	return jo
}

// NewJobFromSpec creates one job from its declarative spec — the
// spec-driven face of NewJob. It validates the spec and returns the job
// handle; everything a JobSpec cannot carry (checkpoint stores, resume
// states) stays with the lower-level NewJob/ResumeJob surface that jobs
// managers drive.
func (rt *Runtime) NewJobFromSpec(spec JobSpec) (*Tuner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return rt.newJob(spec.Options()), nil
}

// NoteQueuedJobs feeds the scheduler's admission-queue accounting: a jobs
// manager holding specs in front of the running set reports each enqueue
// (+1) and dequeue (-1), flagging high-priority entries, so LoadStats — and
// through it an elastic fleet controller — sees control-plane backlog, not
// just process-level admission waits.
func (rt *Runtime) NoteQueuedJobs(high bool, delta int) {
	rt.sched.NoteQueuedJobs(high, delta)
}

// --- versioned binary codec (checkpoint-codec conventions: magic, uvarint
// version, u32 body length, body, FNV-1a trailer) ---

// EncodeSpec encodes the spec canonically: args are written sorted by key,
// so equal specs produce equal bytes.
func EncodeSpec(s *JobSpec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var body []byte
	put := func(b ...byte) { body = append(body, b...) }
	uv := func(v uint64) { body = binary.AppendUvarint(body, v) }
	iv := func(v int64) { body = binary.AppendVarint(body, v) }
	str := func(v string) { uv(uint64(len(v))); put([]byte(v)...) }
	f64 := func(v float64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		put(b[:]...)
	}
	flag := func(v bool) {
		if v {
			put(1)
		} else {
			put(0)
		}
	}

	uv(SpecVersion)
	str(s.Name)
	str(s.Tenant)
	iv(int64(s.Class))
	str(s.Program)
	keys := make([]string, 0, len(s.Args))
	for k := range s.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	uv(uint64(len(keys)))
	for _, k := range keys {
		str(k)
		str(s.Args[k])
	}
	iv(s.Seed)
	f64(s.Budget)
	flag(s.Incremental)
	uv(uint64(s.Share))
	uv(uint64(s.MaxParallel))
	flag(s.Fault != nil)
	if f := s.Fault; f != nil {
		iv(int64(f.SampleTimeout))
		iv(int64(f.RegionBudget))
		uv(uint64(f.MaxAttempts))
		iv(int64(f.Backoff))
		f64(f.BackoffFactor)
		iv(int64(f.MaxBackoff))
		flag(f.DegradeEmpty)
	}
	flag(s.Checkpoint != nil)
	if c := s.Checkpoint; c != nil {
		uv(uint64(c.Every))
		uv(uint64(c.MinSlots))
	}

	h := fnv.New64a()
	h.Write(body)
	out := make([]byte, 0, len(specMagic)+binary.MaxVarintLen64+4+len(body)+8)
	out = append(out, specMagic...)
	out = binary.AppendUvarint(out, SpecVersion)
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(body)))
	out = append(out, lb[:]...)
	out = append(out, body...)
	var tb [8]byte
	binary.BigEndian.PutUint64(tb[:], h.Sum64())
	out = append(out, tb[:]...)
	return out, nil
}

// specDecoder walks an encoded spec body without ever panicking on
// malformed input: the first structural failure latches and every later
// read returns zero values.
type specDecoder struct {
	b   []byte
	off int
	err error
}

func (d *specDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrSpecCorrupt}, args...)...)
	}
}

func (d *specDecoder) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.b)-d.off {
		d.fail("truncated body")
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *specDecoder) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (d *specDecoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *specDecoder) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *specDecoder) f64() float64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(v))
}

func (d *specDecoder) str() string {
	n := d.uv()
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds body", n)
		return ""
	}
	return string(d.take(int(n)))
}

func (d *specDecoder) flag() bool { return d.u8() != 0 }

// DecodeSpec decodes an encoded job spec, refusing unknown versions with
// ErrSpecVersion and malformed data with errors wrapping ErrSpecCorrupt.
func DecodeSpec(data []byte) (*JobSpec, error) {
	if len(data) < len(specMagic)+1 || string(data[:len(specMagic)]) != specMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSpecCorrupt)
	}
	rest := data[len(specMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad version varint", ErrSpecCorrupt)
	}
	if ver != SpecVersion {
		return nil, fmt.Errorf("%w: version %d (this binary speaks %d)", ErrSpecVersion, ver, SpecVersion)
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated length", ErrSpecCorrupt)
	}
	bodyLen := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != bodyLen+8 {
		return nil, fmt.Errorf("%w: body length %d does not match %d remaining bytes",
			ErrSpecCorrupt, bodyLen, len(rest)-8)
	}
	body, trailer := rest[:bodyLen], rest[bodyLen:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.BigEndian.Uint64(trailer) {
		return nil, fmt.Errorf("%w: hash mismatch", ErrSpecCorrupt)
	}

	d := &specDecoder{b: body}
	s := &JobSpec{}
	if v := d.uv(); d.err == nil && v != SpecVersion {
		return nil, fmt.Errorf("%w: body version %d", ErrSpecVersion, v)
	}
	s.Name = d.str()
	s.Tenant = d.str()
	s.Class = PriorityClass(d.iv())
	s.Program = d.str()
	if n := d.uv(); n > 0 {
		if n > uint64(len(body)) {
			d.fail("arg count %d exceeds body", n)
		} else {
			s.Args = make(map[string]string, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				k := d.str()
				s.Args[k] = d.str()
			}
		}
	}
	s.Seed = d.iv()
	s.Budget = d.f64()
	s.Incremental = d.flag()
	s.Share = int(d.uv())
	s.MaxParallel = int(d.uv())
	if d.flag() {
		s.Fault = &FaultSpec{
			SampleTimeout: time.Duration(d.iv()),
			RegionBudget:  time.Duration(d.iv()),
			MaxAttempts:   int(d.uv()),
			Backoff:       time.Duration(d.iv()),
			BackoffFactor: d.f64(),
			MaxBackoff:    time.Duration(d.iv()),
			DegradeEmpty:  d.flag(),
		}
	}
	if d.flag() {
		s.Checkpoint = &CheckpointSpec{Every: int(d.uv()), MinSlots: int(d.uv())}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrSpecCorrupt, len(body)-d.off)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpecCorrupt, err)
	}
	return s, nil
}
