package core

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Metric names the runtime registers when Options.Obs is set. Region-scoped
// metrics carry a region label with the RegionSpec.Name; sample counters
// additionally carry result=done|pruned|failed. Jobs created on a shared
// Runtime prepend job=<JobOptions.Name> to every series below, so one
// Prometheus endpoint covers all co-tenant jobs; single-job Tuners made
// with New stay unlabeled.
const (
	// MetricRegionDuration times whole Region calls (all rounds of
	// auto-tuned sampling included), per region.
	MetricRegionDuration = "wbtuner_region_duration_seconds"
	// MetricSampleDuration times individual sampling-process bodies
	// (drawing, computing, committing, scoring), per region.
	MetricSampleDuration = "wbtuner_sample_duration_seconds"
	// MetricRounds counts sampling rounds, per region.
	MetricRounds = "wbtuner_rounds_total"
	// MetricSamples counts finished sampling processes by outcome, per
	// region (result=done|pruned|failed).
	MetricSamples = "wbtuner_samples_total"
	// MetricSplits counts child tuning processes spawned with Split.
	MetricSplits = "wbtuner_splits_total"
	// MetricRingOccupancy gauges the values buffered in the incremental-
	// aggregation ring (last-writer-wins across concurrent regions).
	MetricRingOccupancy = "wbtuner_ring_occupancy"
	// MetricRingDrainBatch observes the size of every ring drain batch.
	MetricRingDrainBatch = "wbtuner_ring_drain_batch_size"
	// MetricSamplesTimeout counts sampling processes abandoned at a
	// per-sample deadline or region budget, per region.
	MetricSamplesTimeout = "wbtuner_samples_timeout_total"
	// MetricSamplesRetried counts sampling-process re-attempts after
	// retryable failures, per region.
	MetricSamplesRetried = "wbtuner_samples_retried_total"
	// MetricRegionsDegraded counts regions that completed with at least one
	// timed-out or failed sample, per region.
	MetricRegionsDegraded = "wbtuner_regions_degraded_total"
	// MetricCheckpointBytes observes the encoded size of every checkpoint
	// the job writes.
	MetricCheckpointBytes = "wbtuner_checkpoint_bytes"
	// MetricCheckpointDuration times checkpoint captures (quiesce + encode +
	// store write).
	MetricCheckpointDuration = "wbtuner_checkpoint_duration_seconds"
	// MetricCheckpoints counts checkpoints written successfully.
	MetricCheckpoints = "wbtuner_checkpoints_total"
	// MetricCheckpointErrors counts failed auto-checkpoint writes (the run
	// continues; the failure is reported through Tuner.SaveErr).
	MetricCheckpointErrors = "wbtuner_checkpoint_errors_total"
	// MetricResumes counts jobs started from a checkpoint.
	MetricResumes = "wbtuner_resumes_total"
	// MetricReplayedRounds counts sampling rounds satisfied from a resumed
	// job's journal instead of being re-sampled.
	MetricReplayedRounds = "wbtuner_replayed_rounds_total"
)

// tunerObs caches one job's instruments so the hot paths never hit the
// registry lock: job-wide instruments are looked up once at job creation,
// region-scoped ones once per region name. Jobs on a shared Runtime carry a
// job label on every series so one registry distinguishes co-tenants; a
// single-job Tuner made with New has no job label, keeping its exposition
// byte-compatible with the pre-runtime engine. A nil *tunerObs
// (observability off) is valid everywhere.
type tunerObs struct {
	reg       *obs.Registry
	job       string // job label value; "" = unlabeled (single-job compat)
	splits    *obs.Counter
	ringOcc   *obs.Gauge
	ringBatch *obs.Histogram
	ckptBytes *obs.Histogram
	ckptDur   *obs.Histogram
	ckpts     *obs.Counter
	ckptErrs  *obs.Counter
	resumes   *obs.Counter
	replayed  *obs.Counter

	mu      sync.Mutex
	regions map[string]*regionObs
}

// labels prepends the job label (when set) to a series' own labels.
func (o *tunerObs) labels(kv ...string) []string {
	if o.job == "" {
		return kv
	}
	return append([]string{"job", o.job}, kv...)
}

// regionObs holds one region name's instruments.
type regionObs struct {
	duration  *obs.Histogram
	sampleDur *obs.Histogram
	rounds    *obs.Counter
	done      *obs.Counter
	pruned    *obs.Counter
	failed    *obs.Counter
	timeout   *obs.Counter
	retried   *obs.Counter
	degraded  *obs.Counter
}

func newTunerObs(reg *obs.Registry, job string) *tunerObs {
	if reg == nil {
		return nil
	}
	reg.SetHelp(MetricRegionDuration, "wall time of Region calls, all sampling rounds included")
	reg.SetHelp(MetricSampleDuration, "wall time of sampling-process bodies")
	reg.SetHelp(MetricRounds, "sampling rounds started")
	reg.SetHelp(MetricSamples, "sampling processes finished, by outcome")
	reg.SetHelp(MetricSplits, "child tuning processes spawned with Split")
	reg.SetHelp(MetricRingOccupancy, "values buffered in the incremental-aggregation ring")
	reg.SetHelp(MetricRingDrainBatch, "values folded per incremental-aggregation drain")
	reg.SetHelp(MetricSamplesTimeout, "sampling processes abandoned at a deadline or region budget")
	reg.SetHelp(MetricSamplesRetried, "sampling-process re-attempts after retryable failures")
	reg.SetHelp(MetricRegionsDegraded, "regions completed with at least one timed-out or failed sample")
	reg.SetHelp(MetricCheckpointBytes, "encoded size of written checkpoints")
	reg.SetHelp(MetricCheckpointDuration, "wall time of checkpoint captures")
	reg.SetHelp(MetricCheckpoints, "checkpoints written successfully")
	reg.SetHelp(MetricCheckpointErrors, "auto-checkpoint writes that failed")
	reg.SetHelp(MetricResumes, "jobs started from a checkpoint")
	reg.SetHelp(MetricReplayedRounds, "sampling rounds replayed from a resume journal")
	o := &tunerObs{reg: reg, job: job, regions: make(map[string]*regionObs)}
	o.splits = reg.Counter(MetricSplits, o.labels()...)
	o.ringOcc = reg.Gauge(MetricRingOccupancy, o.labels()...)
	o.ringBatch = reg.Histogram(MetricRingDrainBatch, obs.SizeBuckets(), o.labels()...)
	o.ckptBytes = reg.Histogram(MetricCheckpointBytes, obs.ByteBuckets(), o.labels()...)
	o.ckptDur = reg.Histogram(MetricCheckpointDuration, obs.DurationBuckets(), o.labels()...)
	o.ckpts = reg.Counter(MetricCheckpoints, o.labels()...)
	o.ckptErrs = reg.Counter(MetricCheckpointErrors, o.labels()...)
	o.resumes = reg.Counter(MetricResumes, o.labels()...)
	o.replayed = reg.Counter(MetricReplayedRounds, o.labels()...)
	return o
}

// region returns the cached instruments for a region name, creating them on
// first use. Safe on a nil receiver (returns nil).
func (o *tunerObs) region(name string) *regionObs {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if ro, ok := o.regions[name]; ok {
		return ro
	}
	ro := &regionObs{
		duration:  o.reg.Histogram(MetricRegionDuration, obs.DurationBuckets(), o.labels("region", name)...),
		sampleDur: o.reg.Histogram(MetricSampleDuration, obs.DurationBuckets(), o.labels("region", name)...),
		rounds:    o.reg.Counter(MetricRounds, o.labels("region", name)...),
		done:      o.reg.Counter(MetricSamples, o.labels("region", name, "result", "done")...),
		pruned:    o.reg.Counter(MetricSamples, o.labels("region", name, "result", "pruned")...),
		failed:    o.reg.Counter(MetricSamples, o.labels("region", name, "result", "failed")...),
		timeout:   o.reg.Counter(MetricSamplesTimeout, o.labels("region", name)...),
		retried:   o.reg.Counter(MetricSamplesRetried, o.labels("region", name)...),
		degraded:  o.reg.Counter(MetricRegionsDegraded, o.labels("region", name)...),
	}
	o.regions[name] = ro
	return ro
}

// noteSplit counts one Split. Safe on a nil receiver.
func (o *tunerObs) noteSplit() {
	if o != nil {
		o.splits.Inc()
	}
}

// noteCheckpoint records one successful checkpoint write. Safe on nil.
func (o *tunerObs) noteCheckpoint(bytes int, d time.Duration) {
	if o != nil {
		o.ckptBytes.Observe(float64(bytes))
		o.ckptDur.Observe(d.Seconds())
		o.ckpts.Inc()
	}
}

// noteCheckpointError counts one failed auto-checkpoint write. Safe on nil.
func (o *tunerObs) noteCheckpointError() {
	if o != nil {
		o.ckptErrs.Inc()
	}
}

// noteResume counts one resume-from-checkpoint. Safe on nil.
func (o *tunerObs) noteResume() {
	if o != nil {
		o.resumes.Inc()
	}
}

// noteReplayedRound counts one journal-replayed round. Safe on nil.
func (o *tunerObs) noteReplayedRound() {
	if o != nil {
		o.replayed.Inc()
	}
}
