package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/strategy"
)

// detachedState is the tuner-surrogate of a detached sampling process: the
// few per-attempt signals the hot path would otherwise write into tuner
// counters. workMilli is atomic because a body may call Work from helper
// goroutines; the flags are only touched by the body's own goroutine.
type detachedState struct {
	workMilli atomic.Int64
	panicked  bool
	noSync    bool
}

// countPruned and countPanic route outcome counting to the tuner when there
// is one. A detached process has no tuner; its outcome flags travel home in
// the ExecResult and the dispatcher counts them there, so nothing is counted
// twice.
func (rs *regionState) countPruned() {
	if rs.t != nil {
		rs.t.ctr.pruned.Add(1)
	}
}

func (rs *regionState) countPanic() {
	if rs.t != nil {
		rs.t.ctr.panics.Add(1)
	}
	if rs.det != nil {
		rs.det.panicked = true
	}
}

// DetachedRunner executes single sampling processes outside any Tuner — the
// worker side of a distributed executor. It keeps the same per-region-name
// shape state a Tuner keeps (interned symbols, pooled SP structs), so a
// worker that runs many samples of one region gets the same lock-free,
// allocation-free steady state as the in-process pool.
//
// Determinism: the sampler is rebuilt from the task's (Seed, Group, N,
// Feedback) — a pure function — and the body sees the same draw sequence,
// the same exposed snapshot, and the same commit ordering it would see
// locally, so results are bit-identical to an in-process run.
type DetachedRunner struct {
	shapes sync.Map // region name -> *regionShape
}

// NewDetachedRunner returns an empty runner.
func NewDetachedRunner() *DetachedRunner { return &DetachedRunner{} }

func (r *DetachedRunner) shape(name string) *regionShape {
	if v, ok := r.shapes.Load(name); ok {
		return v.(*regionShape)
	}
	v, _ := r.shapes.LoadOrStore(name, &regionShape{syms: store.NewSymbols()})
	return v.(*regionShape)
}

// Run executes one sampling-process attempt of the given region and returns
// its externalized outcome. exposed is the @load state the sample reads
// (typically a decoded snapshot; nil means an empty store). Run is safe for
// concurrent use; concurrent samples of one region share the shape pool.
//
// Run never panics for body-level failures: prunes, contained panics, and
// Sync-in-detached-body all come back as ExecResult flags.
func (r *DetachedRunner) Run(ctx context.Context, spec RegionSpec, body func(sp *SP) error,
	task SampleTask, exposed *store.Exposed) ExecResult {
	spec, err := spec.withDefaults()
	if err != nil {
		return ExecResult{Err: err.Error()}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if exposed == nil {
		exposed = store.NewExposed()
	}
	sh := r.shape(spec.Name)
	sampler := spec.Strategy.Sampler(task.Seed, task.Group, task.N, task.Feedback)
	rs := &regionState{
		spec:    spec,
		seed:    task.Seed,
		n:       task.N,
		k:       1,
		shape:   sh,
		syms:    sh.syms,
		exposed: exposed,
		det:     &detachedState{},
		ctx:     ctx,
	}
	sp := rs.newSP(task.Group, 0, task.Attempt, nil, sampler, ctx)
	bodyErr := rs.invokeBody(sp, body)

	res := ExecResult{
		Pruned:      sp.pruned,
		Panicked:    rs.det.panicked,
		Unsupported: rs.det.noSync,
		Scored:      sp.scored,
		Score:       sp.score,
		WorkMilli:   rs.det.workMilli.Load(),
	}
	if bodyErr != nil {
		res.Err = bodyErr.Error()
		res.Retryable = IsRetryable(bodyErr)
	}
	if bodyErr == nil && !sp.pruned && !res.Unsupported {
		res.Params = make([]ParamKV, 0, len(sp.porder))
		for _, id := range sp.porder {
			res.Params = append(res.Params, ParamKV{Name: rs.syms.Name(id), Value: sp.pvals[id]})
		}
		res.Commits = make([]CommitKV, 0, len(sp.corder))
		for _, id := range sp.corder {
			res.Commits = append(res.Commits, CommitKV{Name: rs.syms.Name(id), Value: sp.cvals[id]})
		}
	}
	rs.recycleSP(sp)
	if rec, ok := sampler.(strategy.Recycler); ok {
		rec.Recycle()
	}
	return res
}
