package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/strategy"
)

// jobProgram runs a small feedback-driven tuning program on the given job
// handle and returns a flat dump of every drawn parameter, committed value,
// and per-round best — the job's complete observable behaviour.
func jobProgram(t *testing.T, job *Tuner) string {
	t.Helper()
	var dump string
	err := job.Run(func(p *P) error {
		p.Expose("bias", 0.25)
		spec := RegionSpec{
			Name:     "r",
			Samples:  6,
			Strategy: strategy.MCMC(strategy.MCMCOptions{}),
			Score:    func(sp *SP) float64 { return sp.MustGet("y").(float64) },
		}
		body := func(sp *SP) error {
			x := sp.Float("x", dist.Uniform(0, 1))
			sp.Commit("y", x+sp.Load("bias").(float64))
			return nil
		}
		for round := 0; round < 3; round++ {
			res, err := p.Region(spec, body)
			if err != nil {
				return err
			}
			for g := 0; g < res.N(); g++ {
				dump += fmt.Sprintf("g%d x=%v y=%v\n", g, res.Params(g)["x"], res.MustValue("y", g))
			}
			dump += fmt.Sprintf("best=%d score=%v\n", res.BestIndex(), res.BestScore())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return dump
}

// TestRuntimeJobsDeterministicUnderContention runs each seed once on a
// private single-job tuner and once as one of three co-tenant jobs racing on
// a shared Runtime; every job must reproduce its solo run exactly. Per-job
// seeds, feedback, and exposed stores are fully isolated — multi-tenancy
// changes only the interleaving, never the results.
func TestRuntimeJobsDeterministicUnderContention(t *testing.T) {
	defer leakcheck.Check(t)()
	seeds := []int64{7, 11, 13}
	solo := make([]string, len(seeds))
	for i, seed := range seeds {
		solo[i] = jobProgram(t, New(Options{MaxPool: 4, Seed: seed}))
	}

	rt := NewRuntime(RuntimeOptions{MaxPool: 4})
	got := make([]string, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		job := rt.NewJob(JobOptions{Name: fmt.Sprintf("j%d", i), Seed: seed, Share: i + 1})
		wg.Add(1)
		go func(i int, job *Tuner) {
			defer wg.Done()
			defer job.Close()
			got[i] = jobProgram(t, job)
		}(i, job)
	}
	wg.Wait()
	for i := range seeds {
		if got[i] != solo[i] {
			t.Errorf("job %d (seed %d) diverged from its solo run:\nshared runtime:\n%s\nsolo:\n%s",
				i, seeds[i], got[i], solo[i])
		}
	}
	if rt.InUse() != 0 {
		t.Fatalf("runtime InUse = %d after all jobs finished", rt.InUse())
	}
}

// TestRuntimeJobMetricLabels checks that co-tenant jobs report their region
// metrics under distinct job labels on the shared registry, and that the
// single-job compatibility path stays unlabeled (byte-compatible exposition
// with the pre-runtime engine).
func TestRuntimeJobMetricLabels(t *testing.T) {
	reg := obs.NewRegistry()
	rt := NewRuntime(RuntimeOptions{MaxPool: 4, Obs: reg})
	for _, name := range []string{"alpha", "beta"} {
		job := rt.NewJob(JobOptions{Name: name, Seed: 1})
		jobProgram(t, job)
		job.Close()
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exp := sb.String()
	for _, want := range []string{
		`wbtuner_samples_total{job="alpha",region="r",result="done"}`,
		`wbtuner_samples_total{job="beta",region="r",result="done"}`,
		`wbtuner_rounds_total{job="alpha",region="r"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("shared exposition missing %s:\n%s", want, exp)
		}
	}

	soloReg := obs.NewRegistry()
	jobProgram(t, New(Options{MaxPool: 4, Seed: 1, Obs: soloReg}))
	sb.Reset()
	if err := soloReg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if strings.Contains(sb.String(), "job=") {
		t.Errorf("single-job exposition grew a job label:\n%s", sb.String())
	}
}

// TestRuntimeDefaultJobNamesAndShares checks the JobOptions defaults: jobs
// are named job<N> in creation order, the zero share means 1, and Close is
// idempotent.
func TestRuntimeDefaultJobNamesAndShares(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{MaxPool: 2})
	a := rt.NewJob(JobOptions{})
	b := rt.NewJob(JobOptions{})
	if a.JobName() != "job1" || b.JobName() != "job2" {
		t.Fatalf("job names = %q, %q", a.JobName(), b.JobName())
	}
	if a.SlotsInUse() != 0 {
		t.Fatalf("fresh job holds %d slots", a.SlotsInUse())
	}
	a.Close()
	a.Close()
	b.Close()
}
