package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventKind classifies a trace event.
type EventKind int

// Trace event kinds, in rough lifecycle order.
const (
	// EvRegionStart marks a Region call entering its tuning role.
	EvRegionStart EventKind = iota
	// EvRoundStart marks one sampling round (auto-tuned sampling runs
	// several rounds per region).
	EvRoundStart
	// EvSampleDone marks a sampling process that committed its results.
	EvSampleDone
	// EvSamplePruned marks a sampling process terminated by Check.
	EvSamplePruned
	// EvSampleFailed marks a sampling process that returned an error or
	// panicked.
	EvSampleFailed
	// EvRegionEnd marks the aggregation point of a region.
	EvRegionEnd
	// EvSplit marks a child tuning process spawned with Split.
	EvSplit
	// EvSampleTimeout marks a sampling process abandoned at its deadline or
	// its region's budget (FaultPolicy) — the distinguished timeout outcome.
	EvSampleTimeout
	// EvSampleRetry marks one re-attempt of a sampling process after a
	// retryable failure; Round carries the attempt number just finished.
	EvSampleRetry
	// EvRegionDegraded marks a region that completed with at least one
	// timed-out or failed sample; N carries the shortfall count.
	EvRegionDegraded
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvRegionStart:
		return "region-start"
	case EvRoundStart:
		return "round-start"
	case EvSampleDone:
		return "sample-done"
	case EvSamplePruned:
		return "sample-pruned"
	case EvSampleFailed:
		return "sample-failed"
	case EvRegionEnd:
		return "region-end"
	case EvSplit:
		return "split"
	case EvSampleTimeout:
		return "sample-timeout"
	case EvSampleRetry:
		return "sample-retry"
	case EvRegionDegraded:
		return "region-degraded"
	default:
		return "unknown"
	}
}

// Event is one observation of the runtime: which tuning process did what in
// which region. Sample is the sample index within its round (-1 when not
// applicable); N carries the round size for EvRoundStart. At is the
// collection time in Unix nanoseconds, stamped by the runtime; events
// constructed with a non-zero At keep it.
type Event struct {
	Kind   EventKind
	At     int64
	Region string
	PID    int64
	Round  int
	Sample int
	N      int
	Score  float64
	Err    string
}

// traceErr condenses an error to its first line for trace events. Full
// errors (panic stacks in particular) carry goroutine IDs and addresses that
// differ run to run; keeping only the stable first line is what makes a
// seeded trace byte-identical on replay. The complete error remains
// available on the region's Result.
func traceErr(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Trace collects runtime events when installed via Options.Trace. It is
// safe for concurrent use; collection order is the runtime's completion
// order, not sample index order.
type Trace struct {
	mu     sync.Mutex
	events []Event
	clock  func() int64 // nil means wall clock
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetClock installs a deterministic clock used to stamp events (e.g. a
// logical counter for byte-identical replay exports); nil restores the wall
// clock. The clock is called under the trace lock, so a plain closure over a
// counter is race-free and stamps events in collection order.
func (tr *Trace) SetClock(fn func() int64) {
	tr.mu.Lock()
	tr.clock = fn
	tr.mu.Unlock()
}

func (tr *Trace) add(e Event) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	// Stamp under the lock so collection order is also timestamp order.
	if e.At == 0 {
		if tr.clock != nil {
			e.At = tr.clock()
		} else {
			e.At = time.Now().UnixNano()
		}
	}
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

// Events returns a copy of everything recorded so far. A nil trace has no
// events.
func (tr *Trace) Events() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Event(nil), tr.events...)
}

// jsonlEvent is the JSONL wire form of an Event: kind as its string name,
// at in Unix nanoseconds, score only where it means something (sample-done
// events with a finite score).
type jsonlEvent struct {
	At     int64    `json:"at"`
	Kind   string   `json:"kind"`
	Region string   `json:"region,omitempty"`
	PID    int64    `json:"pid"`
	Round  int      `json:"round"`
	Sample int      `json:"sample"`
	N      int      `json:"n,omitempty"`
	Score  *float64 `json:"score,omitempty"`
	Err    string   `json:"err,omitempty"`
}

// WriteJSONL writes every recorded event as one JSON object per line, in
// collection order — the machine-readable export of the trace. A nil trace
// writes nothing.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends exactly one newline per event
	for _, e := range tr.Events() {
		je := jsonlEvent{
			At:     e.At,
			Kind:   e.Kind.String(),
			Region: e.Region,
			PID:    e.PID,
			Round:  e.Round,
			Sample: e.Sample,
			N:      e.N,
			Err:    e.Err,
		}
		if e.Kind == EvSampleDone && !math.IsNaN(e.Score) && !math.IsInf(e.Score, 0) {
			score := e.Score
			je.Score = &score
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// regionSummary aggregates a region's events for rendering.
type regionSummary struct {
	name     string
	rounds   int
	samples  int
	pruned   int
	failed   int
	timeouts int
	first    int // arrival order for stable rendering
}

// Tree renders the tuning structure the trace observed — the textual
// equivalent of the paper's Fig. 6 tuning-model diagram: one line per
// region (aggregated over all tuning processes that ran it) plus the split
// count.
func (tr *Trace) Tree() string {
	events := tr.Events()

	regions := map[string]*regionSummary{}
	order := 0
	splits := 0
	for _, e := range events {
		if e.Kind == EvSplit {
			splits++
			continue
		}
		if e.Region == "" {
			continue
		}
		rs, ok := regions[e.Region]
		if !ok {
			rs = &regionSummary{name: e.Region, first: order}
			order++
			regions[e.Region] = rs
		}
		switch e.Kind {
		case EvRoundStart:
			rs.rounds++
		case EvSampleDone:
			rs.samples++
		case EvSamplePruned:
			rs.pruned++
		case EvSampleFailed:
			rs.failed++
		case EvSampleTimeout:
			rs.timeouts++
		}
	}
	list := make([]*regionSummary, 0, len(regions))
	for _, rs := range regions {
		list = append(list, rs)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].first < list[j].first })

	var b strings.Builder
	fmt.Fprintf(&b, "tuning tree (%d splits)\n", splits)
	for _, rs := range list {
		fmt.Fprintf(&b, "  region %-14s rounds=%d samples=%d pruned=%d failed=%d timeout=%d\n",
			rs.name, rs.rounds, rs.samples, rs.pruned, rs.failed, rs.timeouts)
	}
	return b.String()
}
