package core

import (
	"strings"
	"testing"
)

func TestTraceRecordsLifecycle(t *testing.T) {
	tr := NewTrace()
	tuner := New(Options{MaxPool: 8, Seed: 1, Trace: tr})
	run(t, tuner, func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "stage1", Samples: 6}, func(sp *SP) error {
			sp.Check(sp.Index() != 0) // prune one
			sp.Commit("v", 1.0)
			return nil
		})
		if err != nil {
			return err
		}
		_ = res
		p.Split(func(c *P) error {
			_, err := c.Region(RegionSpec{Name: "stage2", Samples: 2}, func(sp *SP) error {
				return nil
			})
			return err
		})
		return p.Wait()
	})

	counts := map[EventKind]int{}
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	if counts[EvRegionStart] != 2 || counts[EvRegionEnd] != 2 {
		t.Fatalf("region events: %v", counts)
	}
	if counts[EvRoundStart] != 2 {
		t.Fatalf("round events: %v", counts)
	}
	if counts[EvSampleDone] != 5+2 || counts[EvSamplePruned] != 1 {
		t.Fatalf("sample events: %v", counts)
	}
	if counts[EvSplit] != 1 {
		t.Fatalf("split events: %v", counts)
	}
}

func TestTraceTreeRendering(t *testing.T) {
	tr := NewTrace()
	tuner := New(Options{MaxPool: 8, Seed: 2, Trace: tr})
	run(t, tuner, func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "alpha", Samples: 4}, func(sp *SP) error {
			return nil
		})
		return err
	})
	tree := tr.Tree()
	if !strings.Contains(tree, "region alpha") {
		t.Fatalf("tree missing region: %q", tree)
	}
	if !strings.Contains(tree, "samples=4") {
		t.Fatalf("tree missing sample count: %q", tree)
	}
	if !strings.Contains(tree, "0 splits") {
		t.Fatalf("tree missing split count: %q", tree)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	// Options without a trace must not panic anywhere in the lifecycle.
	tuner := New(Options{MaxPool: 4, Seed: 3})
	run(t, tuner, func(p *P) error {
		p.Split(func(c *P) error { return nil })
		_, err := p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error {
			sp.Check(sp.Index() == 0)
			return nil
		})
		return err
	})
	var nilTrace *Trace
	if got := nilTrace.Events(); got != nil {
		t.Fatal("nil trace Events should be nil")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvRegionStart, EvRoundStart, EvSampleDone,
		EvSamplePruned, EvSampleFailed, EvRegionEnd, EvSplit, EventKind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
}
