package core

import (
	"testing"

	"repro/internal/dist"
)

// The steady-state allocation contract of the sample inner loop: once a
// tunable has been drawn, an exposed variable loaded, and a result variable
// committed, repeating that operation inside the same sampling process must
// not allocate. This is what keeps a thousands-of-samples tuning run off the
// GC (DESIGN.md §8).

// allocsInSP reports testing.AllocsPerRun of fn inside a single sampling
// process of a minimal region.
func allocsInSP(t *testing.T, setup func(p *P), fn func(sp *SP)) float64 {
	t.Helper()
	var allocs float64
	tuner := New(Options{MaxPool: 1, Seed: 1})
	err := tuner.Run(func(p *P) error {
		if setup != nil {
			setup(p)
		}
		_, err := p.Region(RegionSpec{Name: "alloc", Samples: 1}, func(sp *SP) error {
			allocs = testing.AllocsPerRun(100, func() { fn(sp) })
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return allocs
}

func TestFloatSteadyStateAllocFree(t *testing.T) {
	d := dist.Uniform(0, 1)
	allocs := allocsInSP(t, nil, func(sp *SP) {
		// First call interns and draws; AllocsPerRun's warm-up run absorbs it.
		_ = sp.Float("x", d)
	})
	if allocs != 0 {
		t.Errorf("steady-state Float allocates %.1f objects per call, want 0", allocs)
	}
}

func TestLoadSteadyStateAllocFree(t *testing.T) {
	allocs := allocsInSP(t, func(p *P) { p.Expose("input", 1.25) }, func(sp *SP) {
		_ = sp.Load("input")
	})
	if allocs != 0 {
		t.Errorf("steady-state Load allocates %.1f objects per call, want 0", allocs)
	}
}

func TestCommitSteadyStateAllocFree(t *testing.T) {
	allocs := allocsInSP(t, nil, func(sp *SP) {
		// Constant operand: boxing is static, so the call itself must be free.
		sp.Commit("y", 2.0)
	})
	if allocs != 0 {
		t.Errorf("steady-state Commit allocates %.1f objects per call, want 0", allocs)
	}
}
