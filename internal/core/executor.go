package core

import (
	"context"
	"errors"

	"repro/internal/store"
	"repro/internal/strategy"
)

// ErrExecUnsupported reports that an Executor cannot run a region or sample
// (no live workers, an unregistered body, a Sync barrier inside a detached
// body, an unserializable snapshot). The runtime reacts by running the work
// on the in-process path instead — an executor can always decline, never
// wedge a region.
var ErrExecUnsupported = errors.New("core: executor cannot run this work")

// RoundTask describes one sampling round an Executor is asked to run: the
// complete recipe for reconstructing the round's sampling processes
// elsewhere. Everything a sampler draws is a pure function of (Seed, group,
// N, Feedback), so a worker that rebuilds the sampler from this task
// reproduces the in-process draws bit-identically.
type RoundTask struct {
	// Job is the runtime-unique id of the tuning job the round belongs to.
	// Executors shared by several jobs namespace per-job state (snapshot
	// caches) on it; Tuner.Close retires the namespace via JobEnder.
	Job uint64
	// Region is the region name; executors that resolve bodies from a
	// registry key on it.
	Region string
	// Seed is the round's deterministic seed (Tuner.regionSeed).
	Seed int64
	// Round is the auto-tuned sampling round index (0 for fixed Samples).
	Round int
	// N is the number of sample groups in the round.
	N int
	// Feedback is the accumulated per-region feedback, sorted best-first —
	// the only cross-round state a feedback-driven strategy (MCMC) reads.
	Feedback []strategy.Feedback
	// Spec and Body are the region as the tuning program declared it. A
	// same-process executor may use them directly; a network executor ships
	// the name and resolves a registered equivalent on the worker.
	Spec RegionSpec
	Body func(sp *SP) error
	// Exposed is the tuner's exposed store — the @load state the paper's
	// runtime loads once and reuses, here shipped once per worker as a
	// content-hashed snapshot.
	Exposed *store.Exposed
}

// SampleTask identifies one sampling-process attempt within a RoundTask on
// the worker side of an executor.
type SampleTask struct {
	// Seed, N mirror the RoundTask (the sampler is rebuilt per sample).
	Seed int64
	N    int
	// Group is the sample index within the round.
	Group int
	// Attempt is the 1-based attempt number under the retry policy.
	Attempt int
	// Feedback mirrors the RoundTask.
	Feedback []strategy.Feedback
}

// ParamKV is one drawn parameter in an externalized sample result.
type ParamKV struct {
	Name  string
	Value float64
}

// CommitKV is one committed sample result variable in an externalized
// sample result.
type CommitKV struct {
	Name  string
	Value any
}

// ExecResult is the externalized outcome of one sampling-process attempt —
// everything spDone reads off a finished in-process SP, in shippable form.
type ExecResult struct {
	// Params are the drawn parameters in draw order.
	Params []ParamKV
	// Commits are the committed sample results in commit order.
	Commits []CommitKV
	// Pruned reports that Check terminated the process (rule [CHECK]).
	Pruned bool
	// Panicked reports that the body panicked (contained; Err carries it).
	Panicked bool
	// Scored/Score carry the Score callback's result, if the spec has one.
	Scored bool
	Score  float64
	// Unsupported reports that the body did something a detached process
	// cannot do (a Sync barrier); the sample must re-run in-process.
	Unsupported bool
	// Err is the attempt's error, if any; Retryable preserves its
	// IsRetryable classification across the wire.
	Err       string
	Retryable bool
	// WorkMilli is the work the attempt accounted via SP.Work, in integer
	// 1/1024 units — the same per-call quantization the in-process path
	// applies, so distributed totals match local totals exactly.
	WorkMilli int64
}

// Executor runs sampling processes on behalf of the runtime. The default is
// nil: the existing in-process path, unchanged. A non-nil executor receives
// whole rounds (BeginRound/EndRound bracket the round; the handle is the
// executor's round state) and one Execute call per sampling-process attempt.
//
// Execute must honor ctx: the runtime applies the FaultPolicy per-sample
// deadline to it and treats expiry as a sample timeout. A retryable error
// (IsRetryable) re-enters the PR 2 retry machinery — the re-dispatched
// attempt reconstructs the same seeded sampler, so replays are
// bit-identical wherever they land. Executors must be safe for concurrent
// Execute calls across rounds and samples.
type Executor interface {
	BeginRound(r RoundTask) (handle any, err error)
	Execute(ctx context.Context, handle any, group, attempt int) (ExecResult, error)
	EndRound(handle any)
	// Capacity reports how many samples the executor can run concurrently;
	// the tuner adds it to the Algorithm 1 sampling-slot bound.
	Capacity() int
}

// ElasticExecutor is implemented by executors whose capacity changes at
// runtime (an autoscaled worker fleet). WatchCapacity registers f to receive
// every capacity transition as a signed slot delta, delivering the current
// capacity synchronously first — atomically with respect to transitions, so
// the watcher's running sum always equals the executor's capacity. A runtime
// handed an ElasticExecutor tracks the fleet in its Algorithm 1 sampling
// bound instead of reading Capacity once at construction.
type ElasticExecutor interface {
	Executor
	WatchCapacity(f func(delta int))
}
