package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// RuntimeOptions configure a shared multi-tenant Runtime.
type RuntimeOptions struct {
	// MaxPool bounds the number of simultaneously live tuning + sampling
	// processes across every job of the runtime (Algorithm 1). Zero means
	// twice the number of CPUs.
	MaxPool int
	// DisableScheduler turns Algorithm 1 off (every spawn is admitted
	// immediately). Used by the Fig. 10 ablation.
	DisableScheduler bool
	// Obs, when non-nil, receives the runtime's metrics. Scheduler and
	// executor metrics are runtime-wide; region-scoped metrics additionally
	// carry a job label, so one Prometheus endpoint covers every job.
	Obs *obs.Registry
	// Fault is the default fault-tolerance policy jobs inherit; a job may
	// override it with JobOptions.Fault.
	Fault FaultPolicy
	// Executor, when non-nil, runs sampling processes somewhere other than
	// this process (e.g. a remote worker fleet shared by every job). Its
	// capacity joins the Algorithm 1 admission bound: once at runtime
	// construction, or — when the executor implements ElasticExecutor —
	// continuously, tracking every fleet scale-up and scale-down.
	Executor Executor
}

// Runtime is the shared substrate many tuning jobs run on: one Algorithm 1
// scheduler pool, one Executor (local or remote fleet), one default
// FaultPolicy, and one metrics registry. Create jobs with NewJob; each job
// is an ordinary Tuner restricted to its own seed, feedback state, exposed
// store, and weighted share of the pool. A Runtime is safe for concurrent
// use by all of its jobs.
//
// The single-job constructor New remains as a compatibility wrapper that
// builds a private Runtime; a program using it behaves exactly as before
// the runtime/job split.
type Runtime struct {
	opts    RuntimeOptions
	sched   *sched.Scheduler
	nextJob atomic.Int64
}

// NewRuntime returns a Runtime with the given options.
func NewRuntime(opts RuntimeOptions) *Runtime {
	if opts.MaxPool == 0 {
		opts.MaxPool = 2 * runtime.NumCPU()
	}
	if opts.MaxPool < 1 {
		panic("core: MaxPool must be positive")
	}
	rt := &Runtime{
		opts:  opts,
		sched: sched.New(opts.MaxPool, opts.DisableScheduler),
	}
	if opts.Obs != nil {
		rt.sched.Instrument(opts.Obs)
	}
	if opts.Executor != nil {
		if ew, ok := opts.Executor.(ElasticExecutor); ok {
			// An elastic fleet's slots track Algorithm 1's admission bound
			// continuously: every scale-up widens it, every drain/retirement
			// narrows it, and the watcher's synchronous initial delivery makes
			// the bound exact from the first admission.
			ew.WatchCapacity(func(delta int) {
				if delta > 0 {
					rt.sched.AddCapacity(delta)
				} else if delta < 0 {
					rt.sched.RemoveCapacity(-delta)
				}
			})
		} else if c := opts.Executor.Capacity(); c > 0 {
			// Remote slots join Algorithm 1's admission bound: a dispatched
			// sample occupies a scheduler slot exactly like a local one.
			rt.sched.AddCapacity(c)
		}
	}
	return rt
}

// JobOptions configure one tuning job on a shared Runtime.
type JobOptions struct {
	// Name labels the job in metrics and defaults the trace identity. Empty
	// means "job<N>" with N the creation ordinal. Job names should be
	// unique within a runtime; two jobs sharing a name share metric series.
	Name string
	// Seed makes the job's runs reproducible, independently of its
	// co-tenants. The zero seed is a valid seed.
	Seed int64
	// Incremental enables incremental aggregation (Sec. IV-B) for this job.
	Incremental bool
	// Budget, when positive, bounds the job's total work units.
	Budget float64
	// Trace, when non-nil, records the job's runtime events.
	Trace *Trace
	// Fault overrides the runtime's default fault policy for this job when
	// non-nil.
	Fault *FaultPolicy
	// Share is the job's weight in the scheduler's fair admission: under
	// contention, jobs hold pool slots in proportion to their shares
	// (weighted max-min). Zero means 1.
	Share int
	// MaxParallel, when positive, hard-caps how many pool slots the job's
	// processes may hold at once — an upper bound layered on top of the
	// fair share, never a reservation. Zero means no cap.
	MaxParallel int
	// Checkpoint, when non-nil, turns on checkpoint recording for this job.
	// See Options.Checkpoint.
	Checkpoint *CheckpointPolicy
	// Resume, when non-nil, starts the job from a checkpoint. NewJob panics
	// if the checkpoint cannot be resumed here; prefer Runtime.ResumeJob,
	// which reports the failure as a typed error.
	Resume *checkpoint.State
}

// NewJob creates one tuning job on the shared runtime and returns its
// handle. The job draws pool slots from the runtime's scheduler under its
// weighted share, dispatches through the runtime's executor (with its own
// snapshot namespace), and reports region metrics under its job label.
// Call Close on the handle when the job is finished to release per-job
// state held outside this process.
func (rt *Runtime) NewJob(jo JobOptions) *Tuner {
	if jo.Resume != nil {
		if err := rt.validateResume(jo.Resume); err != nil {
			panic("core: cannot resume checkpoint: " + err.Error())
		}
	}
	return rt.newJob(jo)
}

// ResumeJob creates a job that continues from a checkpoint, validating that
// this runtime can host it. It fails with ErrResumeCompleted for a final
// checkpoint, ErrResumeCapacity when the scheduler pool is below the
// checkpoint's MinSlots floor, and ErrResumeDuplicate when the same capture
// was already resumed in this process. On success the returned job replays
// the checkpointed history on its next Run and continues live from there —
// the receiving half of a live migration.
func (rt *Runtime) ResumeJob(jo JobOptions, st *checkpoint.State) (*Tuner, error) {
	if st == nil {
		return nil, errors.New("core: ResumeJob requires a checkpoint state")
	}
	if err := rt.validateResume(st); err != nil {
		return nil, err
	}
	jo.Resume = st
	return rt.newJob(jo), nil
}

// validateResume checks that st can be resumed on this runtime and claims
// its capture ID. The duplicate check runs last so a rejected checkpoint
// stays resumable elsewhere.
func (rt *Runtime) validateResume(st *checkpoint.State) error {
	if st.Complete {
		return ErrResumeCompleted
	}
	if c := rt.sched.Capacity(); c < st.MinSlots {
		return fmt.Errorf("%w: runtime has %d slots, checkpoint requires %d",
			ErrResumeCapacity, c, st.MinSlots)
	}
	resumedMu.Lock()
	defer resumedMu.Unlock()
	if resumedID[st.ID] {
		return ErrResumeDuplicate
	}
	resumedID[st.ID] = true
	return nil
}

// nextJobID namespaces per-job executor state (worker-side snapshot
// caches). It is process-global, not per-runtime: a fleet executor can be
// shared by several Runtimes — that is how a job migrates between them —
// and per-runtime ids would collide in the workers' job namespaces, so
// that one runtime's Close could drop another job's fleet state.
var nextJobID atomic.Uint64

// newJob assembles a job whose resume state, if any, is already validated.
func (rt *Runtime) newJob(jo JobOptions) *Tuner {
	ordinal := rt.nextJob.Add(1)
	name := jo.Name
	if name == "" {
		name = fmt.Sprintf("job%d", ordinal)
	}
	id := nextJobID.Add(1)
	share := jo.Share
	if share == 0 {
		share = 1
	}
	fault := rt.opts.Fault
	if jo.Fault != nil {
		fault = *jo.Fault
	}
	return rt.newTuner(Options{
		MaxPool:          rt.opts.MaxPool,
		Seed:             jo.Seed,
		Incremental:      jo.Incremental,
		DisableScheduler: rt.opts.DisableScheduler,
		Trace:            jo.Trace,
		Obs:              rt.opts.Obs,
		Budget:           jo.Budget,
		Fault:            fault,
		Executor:         rt.opts.Executor,
		Checkpoint:       jo.Checkpoint,
		Resume:           jo.Resume,
	}, id, name, share, jo.MaxParallel)
}

// newTuner assembles a job handle. label == "" keeps the pre-runtime metric
// label scheme (no job label) for single-job compatibility wrappers.
func (rt *Runtime) newTuner(opts Options, id uint64, label string, share, cap int) *Tuner {
	if opts.Resume != nil {
		// The checkpoint's seed governs the whole resumed run: replayed
		// rounds were recorded under it, and post-frontier rounds must draw
		// from the same deterministic stream.
		opts.Seed = opts.Resume.Seed
	}
	t := &Tuner{
		opts:    opts,
		rt:      rt,
		sched:   rt.sched,
		job:     sched.NewJob(share, cap),
		jobID:   id,
		jobName: label,
		exposed: store.NewExposed(),
		obsv:    newTunerObs(opts.Obs, label),
	}
	if opts.Checkpoint != nil || opts.Resume != nil {
		t.rec = newRecorder(t, opts.Checkpoint, opts.Resume)
	}
	return t
}

// Scheduler exposes the runtime's scheduler statistics.
func (rt *Runtime) Scheduler() sched.Stats { return rt.sched.Stats() }

// InUse reports the number of currently admitted processes across all jobs.
func (rt *Runtime) InUse() int { return rt.sched.InUse() }

// Load exposes the scheduler's cumulative admission-load counters — the
// autoscaler's control signal: an elastic fleet controller diffs successive
// snapshots to derive the mean admission wait per interval and steers the
// fleet toward its queue-latency setpoint.
func (rt *Runtime) Load() sched.LoadStats { return rt.sched.Load() }

// JobEnder is implemented by executors that keep per-job state (snapshot
// namespaces on remote workers); Tuner.Close calls EndJob with the job's
// runtime-unique id so that state is released fleet-wide.
type JobEnder interface {
	EndJob(job uint64)
}

// Runtime returns the runtime this job belongs to.
func (t *Tuner) Runtime() *Runtime { return t.rt }

// JobName returns the job's metric label ("" for a single-job Tuner made
// with New).
func (t *Tuner) JobName() string { return t.jobName }

// SlotsInUse reports how many scheduler pool slots the job's processes hold
// right now.
func (t *Tuner) SlotsInUse() int { return t.job.InUse() }

// Close releases the job's cross-runtime state: remote workers drop the
// job's snapshot namespace. It does not interrupt running work — cancel the
// RunContext context for that — and is idempotent. The handle must not be
// used after Close.
func (t *Tuner) Close() {
	if t.closed.Swap(true) {
		return
	}
	if je, ok := t.opts.Executor.(JobEnder); ok {
		je.EndJob(t.jobID)
	}
}
