package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/strategy"
)

// prunePanic is the sentinel used by Check to unwind a pruned sampling
// process; it never escapes the runtime.
type prunePanic struct{}

// abandonPanic is the sentinel used to unwind a sampling process whose
// attempt the runtime abandoned at a deadline (FaultPolicy); like prunePanic
// it never escapes the runtime.
type abandonPanic struct{}

// spSlot tracks ownership of one Algorithm 1 pool slot across the attempts
// of one (group, fold) worker. Sync hands the slot back around the barrier,
// and the timeout monitor releases it when abandoning a wedged attempt — the
// CAS makes the hand-off race-free, so a slot is never released twice.
type spSlot struct{ held atomic.Bool }

func newHeldSlot() *spSlot {
	s := &spSlot{}
	s.held.Store(true)
	return s
}

// release returns the slot to the pool if this call transitions it out of
// held state; otherwise it is a no-op.
func (s *spSlot) release(t *Tuner) {
	if s.held.CompareAndSwap(true, false) {
		t.sched.Release()
	}
}

// reacquire blocks for a fresh slot and marks it held.
func (s *spSlot) reacquire(t *Tuner) {
	t.sched.Acquire(sched.SpawnS, 0)
	s.held.Store(true)
}

// SP is a sampling process (mode S⟨pid⟩): one worker executing the body of
// a sampling region with one drawn parameter configuration. An SP and
// everything reachable only through it is confined to its goroutine.
type SP struct {
	rs      *regionState
	group   int
	fold    int
	attempt int
	sampler strategy.Sampler
	shared  *svgShared
	slot    *spSlot
	ctx     context.Context

	// abandoned flips when the runtime gives up on this attempt (deadline or
	// region budget). The body goroutine checks it at the runtime's
	// re-entry points and unwinds via abandonPanic.
	abandoned atomic.Bool
	// atBarrier marks the process as blocked in a Sync rendezvous. The
	// per-sample deadline is suspended while it is set: a barrier waiter is
	// never the process wedging the region (the pending count releases the
	// barrier once only waiters remain), so abandoning it would punish the
	// victims of a hung sibling instead of the sibling.
	atBarrier atomic.Bool
	// resumed signals the deadline monitor that the process left a barrier
	// and its compute-phase deadline should restart.
	resumed chan struct{}

	params  map[string]float64
	commits map[string]any
	pruned  bool
	score   float64
	scored  bool
}

func (sp *SP) isAbandoned() bool { return sp.abandoned.Load() }

// Index returns this sampling process's sample index within the region
// (the SVG index under cross-validation).
func (sp *SP) Index() int { return sp.group }

// Attempt returns the 1-based attempt number of this sampling process under
// the region's retry policy (always 1 without retries).
func (sp *SP) Attempt() int { return sp.attempt }

// Context returns this attempt's context. It carries the per-sample deadline
// and the region budget (FaultPolicy); long-running sampler bodies should
// select on Context().Done() so an abandoned attempt unwinds promptly
// instead of leaking its goroutine.
func (sp *SP) Context() context.Context {
	if sp.ctx == nil {
		return context.Background()
	}
	return sp.ctx
}

// Fold returns the cross-validation fold of this process and the total
// fold count k. Without cross-validation it returns (0, 1).
func (sp *SP) Fold() (fold, k int) { return sp.fold, sp.rs.k }

// Float draws the tunable variable name from d (rule [SAMPLE]). Drawing
// the same name again returns the already-drawn value, and under
// cross-validation all processes of one SVG share the same draw.
func (sp *SP) Float(name string, d dist.Dist) float64 {
	if sp.isAbandoned() {
		panic(abandonPanic{})
	}
	if v, ok := sp.params[name]; ok {
		return v
	}
	var v float64
	if sp.shared != nil {
		v = sp.shared.draw(name, sp.sampler, d)
	} else {
		v = sp.sampler.Draw(name, d)
	}
	sp.params[name] = v
	return v
}

// Int draws an integer-valued tunable variable.
func (sp *SP) Int(name string, d dist.Dist) int {
	return int(math.Round(sp.Float(name, d)))
}

// Pick draws one of the given options as a tunable variable.
func Pick[T any](sp *SP, name string, options []T) T {
	i := sp.Int(name, dist.Choice(len(options)))
	return options[i]
}

// Params returns a copy of every parameter this process has drawn so far.
func (sp *SP) Params() map[string]float64 {
	out := make(map[string]float64, len(sp.params))
	for k, v := range sp.params {
		out[k] = v
	}
	return out
}

// Commit submits the sample result variable x (rule [AGGR-S]). The value
// becomes visible in the tuning process's aggregation store when this
// sampling process finishes. Committing x again overwrites.
//
// Values of type float64 and []float64 participate in the built-in
// aggregation strategies; any type may be committed for custom aggregation.
func (sp *SP) Commit(x string, v any) {
	sp.commits[x] = v
}

// Get reads back a value this process has committed; Score callbacks use it.
func (sp *SP) Get(x string) (any, bool) {
	v, ok := sp.commits[x]
	return v, ok
}

// MustGet is Get for values known to be committed; it panics otherwise.
func (sp *SP) MustGet(x string) any {
	v, ok := sp.commits[x]
	if !ok {
		panic(fmt.Sprintf("core: sample variable %q was not committed", x))
	}
	return v
}

// Check prunes this sampling process if ok is false (rule [CHECK]): the
// run terminates immediately, commits nothing, and is excluded from
// aggregation. Pruning long before the aggregation point is the white-box
// advantage black-box tuning cannot express.
func (sp *SP) Check(ok bool) {
	if !ok {
		panic(prunePanic{})
	}
}

// CheckFn is Check with a deferred condition, mirroring the cbChk callback.
func (sp *SP) CheckFn(fn func() bool) { sp.Check(fn()) }

// Work accounts units of computation performed by this sampling process;
// sampling-process work is parallelizable across the pool.
func (sp *SP) Work(units float64) { sp.rs.t.addWork(units, true) }

// Load reads an exposed global-scope variable from inside a sampling
// process; the exposed store is shared with the tuning process.
func (sp *SP) Load(name string) any { return sp.rs.t.exposed.MustGet(globalScope, name) }

// Sync blocks until every live sampling process of the region has reached
// the barrier, runs cb once on behalf of the tuning process (rule
// [SYNC-T]), and then releases all waiters (rule [SYNC-S]). Every sampling
// process of the region must call Sync the same number of times; processes
// that finish or are pruned stop counting toward the barrier.
//
// While blocked the process gives its scheduler slot back (Algorithm 1's
// wait() adjusts poolSize the same way), so a region larger than the pool
// cannot deadlock on its own barrier.
//
// An abandoned process (FaultPolicy deadline) unwinds here instead of
// arriving: its timeout outcome was already committed, so it no longer
// counts toward the rendezvous.
func (sp *SP) Sync(cb func(v *SyncView)) {
	if sp.isAbandoned() {
		panic(abandonPanic{})
	}
	t := sp.rs.t
	sp.atBarrier.Store(true)
	sp.slot.release(t)
	sp.rs.barrier.arrive(sp, cb)
	if sp.isAbandoned() {
		panic(abandonPanic{})
	}
	sp.slot.reacquire(t)
	sp.atBarrier.Store(false)
	if sp.resumed != nil {
		select { // coalescing signal: the monitor restarts the deadline
		case sp.resumed <- struct{}{}:
		default:
		}
	}
	if sp.isAbandoned() {
		sp.slot.release(t)
		panic(abandonPanic{})
	}
}

// svgShared holds the parameter draws shared by the k processes of one
// sampling-and-validation group (Sec. IV-A): same sample values, different
// folds.
type svgShared struct {
	mu   sync.Mutex
	vals map[string]float64
}

func (s *svgShared) draw(name string, sampler strategy.Sampler, d dist.Dist) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vals[name]; ok {
		return v
	}
	v := sampler.Draw(name, d)
	s.vals[name] = v
	return v
}

// runSP executes one sampling process: draw, compute, commit, score — with
// the region's fault policy applied around it. Retryable failures re-attempt
// with deterministic backoff; a deadline or budget expiry abandons the
// attempt and commits the distinguished timeout outcome. Exactly one spDone
// is reported per (group, fold) slot regardless of attempts.
func (rs *regionState) runSP(ctx context.Context, g, f int, slot *spSlot, sampler strategy.Sampler, body func(sp *SP) error) {
	t := rs.t
	fp := t.opts.Fault
	var sp *SP
	var err error
	timedOut := false
	for attempt := 1; ; attempt++ {
		sp, err, timedOut = rs.runAttempt(ctx, g, f, attempt, slot, sampler, body)
		if timedOut || err == nil || !IsRetryable(err) || attempt >= fp.attempts() || ctx.Err() != nil {
			break
		}
		t.mu.Lock()
		t.metrics.Retried++
		t.mu.Unlock()
		if rs.ro != nil {
			rs.ro.retried.Inc()
		}
		t.opts.Trace.add(Event{Kind: EvSampleRetry, Region: rs.spec.Name,
			Sample: g, Round: attempt, Err: traceErr(err)})
		timer := time.NewTimer(fp.backoff(rs.seed, g, attempt+1))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			err = fmt.Errorf("%w during retry backoff: %v", ErrSampleTimeout, ctx.Err())
			timedOut = true
		}
		if timedOut {
			break
		}
	}
	rs.spDone(sp, err, timedOut)
}

// runAttempt executes one attempt of a sampling process under its deadline.
// The body runs in its own goroutine; the calling worker acts as the monitor
// and, on deadline expiry, abandons the attempt — releasing the pool slot and
// reporting a timeout — while the body goroutine unwinds on its own once it
// observes the cancelled context (abandonPanic at the runtime re-entry
// points, or the body returning).
func (rs *regionState) runAttempt(ctx context.Context, g, f, attempt int, slot *spSlot,
	sampler strategy.Sampler, body func(sp *SP) error) (*SP, error, bool) {
	t := rs.t
	t.mu.Lock()
	t.metrics.Samples++
	t.mu.Unlock()

	fp := t.opts.Fault
	sctx := ctx
	var cancel context.CancelFunc
	if fp.SampleTimeout > 0 {
		// The deadline is enforced by a monitor-owned timer rather than
		// context.WithTimeout so it can be suspended while the body waits at
		// a Sync barrier; the cancelable context still propagates abandonment
		// to the body via SP.Context.
		sctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	sp := &SP{
		rs:      rs,
		group:   g,
		fold:    f,
		attempt: attempt,
		sampler: sampler,
		slot:    slot,
		ctx:     sctx,
		params:  make(map[string]float64),
		commits: make(map[string]any),
	}
	if fp.SampleTimeout > 0 {
		sp.resumed = make(chan struct{}, 1)
	}
	if rs.shared != nil {
		sp.shared = rs.shared[g]
	}

	if rs.ro != nil {
		t0 := time.Now()
		defer rs.ro.sampleDur.ObserveSince(t0)
	}

	done := make(chan error, 1)
	go func() {
		var bodyErr error
		defer func() {
			if r := recover(); r != nil {
				switch r.(type) {
				case prunePanic:
					sp.pruned = true
					t.mu.Lock()
					t.metrics.Pruned++
					t.mu.Unlock()
				case abandonPanic:
					// The monitor already reported this attempt as timed
					// out; nobody is listening for its outcome.
					return
				default:
					bodyErr = fmt.Errorf("core: sampling process (sample %d, fold %d) panicked: %v\n%s",
						g, f, r, debug.Stack())
					t.mu.Lock()
					t.metrics.Panics++
					t.mu.Unlock()
				}
			}
			done <- bodyErr
		}()
		bodyErr = body(sp)
		if bodyErr == nil && rs.spec.Score != nil && !sp.isAbandoned() {
			sp.score = rs.spec.Score(sp)
			sp.scored = true
		}
	}()

	if sctx.Done() == nil {
		// No deadline, budget, or caller cancellation anywhere: plain
		// synchronous wait, exactly the pre-fault-layer semantics.
		return sp, <-done, false
	}

	abandon := func(cause error) (*SP, error, bool) {
		// Abandon the attempt: commit the timeout outcome and release the
		// wedged slot so Algorithm 1 admission keeps flowing. The body
		// goroutine is not killed — it unwinds when it next touches the
		// runtime or observes SP.Context; a body that ignores both keeps its
		// goroutine until it returns on its own.
		sp.abandoned.Store(true)
		if cancel != nil {
			cancel()
		}
		slot.release(t)
		return sp, fmt.Errorf("%w: %v", ErrSampleTimeout, cause), true
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	if fp.SampleTimeout > 0 {
		timer = time.NewTimer(fp.SampleTimeout)
		defer timer.Stop()
		timerC = timer.C
	}
	for {
		select {
		case err := <-done:
			return sp, err, false
		case <-ctx.Done():
			// Region budget exhausted or the caller cancelled the run: hard
			// abandonment, barrier or not.
			return abandon(ctx.Err())
		case <-timerC:
			if sp.atBarrier.Load() {
				// The deadline covers compute phases only. A process blocked
				// at the Sync barrier is never the one wedging the region (the
				// pending count releases the barrier once only waiters
				// remain), so suspend the deadline until it resumes.
				timerC = nil
				continue
			}
			return abandon(fmt.Errorf("sample deadline %v exceeded", fp.SampleTimeout))
		case <-sp.resumed:
			// The body left a barrier: restart the compute-phase deadline.
			if timer != nil {
				if timerC != nil && !timer.Stop() {
					select { // drain a concurrently fired timer
					case <-timer.C:
					default:
					}
				}
				timer.Reset(fp.SampleTimeout)
				timerC = timer.C
			}
		}
	}
}

// spDone commits the finished sampling process's results into the region
// (the parent side of rule [AGGR-S]) and advances the barrier bookkeeping.
// A timed-out process contributes nothing but its distinguished outcome: the
// monitor must not read the abandoned body's mutable state, so only the
// immutable sample index is touched on that path.
func (rs *regionState) spDone(sp *SP, err error, timedOut bool) {
	switch {
	case timedOut:
		rs.t.mu.Lock()
		rs.t.metrics.Timeouts++
		rs.t.mu.Unlock()
		if rs.ro != nil {
			rs.ro.timeout.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleTimeout, Region: rs.spec.Name,
			Sample: sp.group, Err: traceErr(err)})
	case err != nil:
		if rs.ro != nil {
			rs.ro.failed.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleFailed, Region: rs.spec.Name,
			Sample: sp.group, Err: traceErr(err)})
	case sp.pruned:
		if rs.ro != nil {
			rs.ro.pruned.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSamplePruned, Region: rs.spec.Name, Sample: sp.group})
	default:
		if rs.ro != nil {
			rs.ro.done.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleDone, Region: rs.spec.Name,
			Sample: sp.group, Score: sp.score})
	}
	rs.mu.Lock()
	g := sp.group
	switch {
	case err != nil:
		if rs.errs[g] == nil {
			rs.errs[g] = err
		}
	case sp.pruned:
		rs.pruned[g] = true
	default:
		if rs.params[g] == nil {
			rs.params[g] = sp.Params()
		}
		if sp.fold == 0 {
			for x, v := range sp.commits {
				if _, ok := rs.incs[x]; ok {
					if rs.ring != nil {
						// Incremental path: hand the value to the tuning
						// process through the bounded ring and do not
						// retain it.
						rs.ring.Put(ringItem{x: x, v: v})
						continue
					}
					rs.incs[x].Add(v)
				}
				rs.store.Put(x, g, v)
			}
		}
		if sp.scored {
			rs.scoreSum[g] += sp.score
			rs.scoreCnt[g]++
		}
	}
	rs.done++
	rs.mu.Unlock()
	rs.barrier.maybeRelease()
}

// SyncView is what a barrier callback sees: the sampling processes blocked
// at the barrier, with their drawn parameters and the values they have
// committed so far.
type SyncView struct{ sps []*SP }

// Count reports how many sampling processes reached the barrier.
func (v *SyncView) Count() int { return len(v.sps) }

// Sample returns the sample index of the i-th arrived process.
func (v *SyncView) Sample(i int) int { return v.sps[i].group }

// Params returns the parameters drawn so far by the i-th arrived process.
func (v *SyncView) Params(i int) map[string]float64 { return v.sps[i].Params() }

// Value reads a value the i-th arrived process has committed so far.
func (v *SyncView) Value(i int, x string) (any, bool) { return v.sps[i].Get(x) }

// barrier implements the @sync rendezvous for one region. Release happens
// when every not-yet-finished sampling process of the region has arrived.
type barrier struct {
	rs *regionState

	mu      sync.Mutex
	waiters []chan struct{}
	arrived []*SP
	cb      func(v *SyncView)
}

func newBarrier(rs *regionState) *barrier { return &barrier{rs: rs} }

func (b *barrier) arrive(sp *SP, cb func(v *SyncView)) {
	ch := make(chan struct{})
	b.mu.Lock()
	b.waiters = append(b.waiters, ch)
	b.arrived = append(b.arrived, sp)
	b.cb = cb
	b.mu.Unlock()
	b.maybeRelease()
	<-ch
}

// maybeRelease releases the barrier when the arrived set equals the set of
// live (launched or still to launch, not finished) sampling processes.
func (b *barrier) maybeRelease() {
	b.rs.mu.Lock()
	pending := b.rs.total - b.rs.done
	b.rs.mu.Unlock()

	b.mu.Lock()
	// Drop abandoned sampling processes from the rendezvous: their timeout
	// outcome is already committed, so they no longer count toward pending.
	// Closing their channel lets the body goroutine unwind via the
	// abandonment check in Sync.
	if len(b.arrived) > 0 {
		kw, ka := b.waiters[:0], b.arrived[:0]
		for i, sp := range b.arrived {
			if sp.isAbandoned() {
				close(b.waiters[i])
				continue
			}
			kw = append(kw, b.waiters[i])
			ka = append(ka, sp)
		}
		b.waiters, b.arrived = kw, ka
	}
	if len(b.waiters) == 0 || len(b.waiters) != pending {
		b.mu.Unlock()
		return
	}
	cb := b.cb
	sps := b.arrived
	waiters := b.waiters
	b.waiters, b.arrived, b.cb = nil, nil, nil
	b.mu.Unlock()

	if cb != nil {
		cb(&SyncView{sps: sps})
	}
	for _, ch := range waiters {
		close(ch)
	}
}
