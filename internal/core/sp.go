package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/strategy"
)

// prunePanic is the sentinel used by Check to unwind a pruned sampling
// process; it never escapes the runtime.
type prunePanic struct{}

// SP is a sampling process (mode S⟨pid⟩): one worker executing the body of
// a sampling region with one drawn parameter configuration. An SP and
// everything reachable only through it is confined to its goroutine.
type SP struct {
	rs      *regionState
	group   int
	fold    int
	sampler strategy.Sampler
	shared  *svgShared

	params  map[string]float64
	commits map[string]any
	pruned  bool
	score   float64
	scored  bool
}

// Index returns this sampling process's sample index within the region
// (the SVG index under cross-validation).
func (sp *SP) Index() int { return sp.group }

// Fold returns the cross-validation fold of this process and the total
// fold count k. Without cross-validation it returns (0, 1).
func (sp *SP) Fold() (fold, k int) { return sp.fold, sp.rs.k }

// Float draws the tunable variable name from d (rule [SAMPLE]). Drawing
// the same name again returns the already-drawn value, and under
// cross-validation all processes of one SVG share the same draw.
func (sp *SP) Float(name string, d dist.Dist) float64 {
	if v, ok := sp.params[name]; ok {
		return v
	}
	var v float64
	if sp.shared != nil {
		v = sp.shared.draw(name, sp.sampler, d)
	} else {
		v = sp.sampler.Draw(name, d)
	}
	sp.params[name] = v
	return v
}

// Int draws an integer-valued tunable variable.
func (sp *SP) Int(name string, d dist.Dist) int {
	return int(math.Round(sp.Float(name, d)))
}

// Pick draws one of the given options as a tunable variable.
func Pick[T any](sp *SP, name string, options []T) T {
	i := sp.Int(name, dist.Choice(len(options)))
	return options[i]
}

// Params returns a copy of every parameter this process has drawn so far.
func (sp *SP) Params() map[string]float64 {
	out := make(map[string]float64, len(sp.params))
	for k, v := range sp.params {
		out[k] = v
	}
	return out
}

// Commit submits the sample result variable x (rule [AGGR-S]). The value
// becomes visible in the tuning process's aggregation store when this
// sampling process finishes. Committing x again overwrites.
//
// Values of type float64 and []float64 participate in the built-in
// aggregation strategies; any type may be committed for custom aggregation.
func (sp *SP) Commit(x string, v any) {
	sp.commits[x] = v
}

// Get reads back a value this process has committed; Score callbacks use it.
func (sp *SP) Get(x string) (any, bool) {
	v, ok := sp.commits[x]
	return v, ok
}

// MustGet is Get for values known to be committed; it panics otherwise.
func (sp *SP) MustGet(x string) any {
	v, ok := sp.commits[x]
	if !ok {
		panic(fmt.Sprintf("core: sample variable %q was not committed", x))
	}
	return v
}

// Check prunes this sampling process if ok is false (rule [CHECK]): the
// run terminates immediately, commits nothing, and is excluded from
// aggregation. Pruning long before the aggregation point is the white-box
// advantage black-box tuning cannot express.
func (sp *SP) Check(ok bool) {
	if !ok {
		panic(prunePanic{})
	}
}

// CheckFn is Check with a deferred condition, mirroring the cbChk callback.
func (sp *SP) CheckFn(fn func() bool) { sp.Check(fn()) }

// Work accounts units of computation performed by this sampling process;
// sampling-process work is parallelizable across the pool.
func (sp *SP) Work(units float64) { sp.rs.t.addWork(units, true) }

// Load reads an exposed global-scope variable from inside a sampling
// process; the exposed store is shared with the tuning process.
func (sp *SP) Load(name string) any { return sp.rs.t.exposed.MustGet(globalScope, name) }

// Sync blocks until every live sampling process of the region has reached
// the barrier, runs cb once on behalf of the tuning process (rule
// [SYNC-T]), and then releases all waiters (rule [SYNC-S]). Every sampling
// process of the region must call Sync the same number of times; processes
// that finish or are pruned stop counting toward the barrier.
//
// While blocked the process gives its scheduler slot back (Algorithm 1's
// wait() adjusts poolSize the same way), so a region larger than the pool
// cannot deadlock on its own barrier.
func (sp *SP) Sync(cb func(v *SyncView)) {
	t := sp.rs.t
	t.sched.Release()
	sp.rs.barrier.arrive(sp, cb)
	t.sched.Acquire(sched.SpawnS, 0)
}

// svgShared holds the parameter draws shared by the k processes of one
// sampling-and-validation group (Sec. IV-A): same sample values, different
// folds.
type svgShared struct {
	mu   sync.Mutex
	vals map[string]float64
}

func (s *svgShared) draw(name string, sampler strategy.Sampler, d dist.Dist) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vals[name]; ok {
		return v
	}
	v := sampler.Draw(name, d)
	s.vals[name] = v
	return v
}

// runSP executes one sampling process: draw, compute, commit, score.
func (rs *regionState) runSP(g, f int, sampler strategy.Sampler, body func(sp *SP) error) {
	t := rs.t
	t.mu.Lock()
	t.metrics.Samples++
	t.mu.Unlock()

	sp := &SP{
		rs:      rs,
		group:   g,
		fold:    f,
		sampler: sampler,
		params:  make(map[string]float64),
		commits: make(map[string]any),
	}
	if rs.shared != nil {
		sp.shared = rs.shared[g]
	}

	if rs.ro != nil {
		t0 := time.Now()
		defer rs.ro.sampleDur.ObserveSince(t0)
	}

	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(prunePanic); ok {
					sp.pruned = true
					t.mu.Lock()
					t.metrics.Pruned++
					t.mu.Unlock()
					return
				}
				err = fmt.Errorf("core: sampling process (sample %d, fold %d) panicked: %v", g, f, r)
				t.mu.Lock()
				t.metrics.Panics++
				t.mu.Unlock()
			}
		}()
		err = body(sp)
		if err == nil && rs.spec.Score != nil {
			sp.score = rs.spec.Score(sp)
			sp.scored = true
		}
	}()

	rs.spDone(sp, err)
}

// spDone commits the finished sampling process's results into the region
// (the parent side of rule [AGGR-S]) and advances the barrier bookkeeping.
func (rs *regionState) spDone(sp *SP, err error) {
	switch {
	case err != nil:
		if rs.ro != nil {
			rs.ro.failed.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleFailed, Region: rs.spec.Name,
			Sample: sp.group, Err: err.Error()})
	case sp.pruned:
		if rs.ro != nil {
			rs.ro.pruned.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSamplePruned, Region: rs.spec.Name, Sample: sp.group})
	default:
		if rs.ro != nil {
			rs.ro.done.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleDone, Region: rs.spec.Name,
			Sample: sp.group, Score: sp.score})
	}
	rs.mu.Lock()
	g := sp.group
	switch {
	case err != nil:
		if rs.errs[g] == nil {
			rs.errs[g] = err
		}
	case sp.pruned:
		rs.pruned[g] = true
	default:
		if rs.params[g] == nil {
			rs.params[g] = sp.Params()
		}
		if sp.fold == 0 {
			for x, v := range sp.commits {
				if _, ok := rs.incs[x]; ok {
					if rs.ring != nil {
						// Incremental path: hand the value to the tuning
						// process through the bounded ring and do not
						// retain it.
						rs.ring.Put(ringItem{x: x, v: v})
						continue
					}
					rs.incs[x].Add(v)
				}
				rs.store.Put(x, g, v)
			}
		}
		if sp.scored {
			rs.scoreSum[g] += sp.score
			rs.scoreCnt[g]++
		}
	}
	rs.done++
	rs.mu.Unlock()
	rs.barrier.maybeRelease()
}

// SyncView is what a barrier callback sees: the sampling processes blocked
// at the barrier, with their drawn parameters and the values they have
// committed so far.
type SyncView struct{ sps []*SP }

// Count reports how many sampling processes reached the barrier.
func (v *SyncView) Count() int { return len(v.sps) }

// Sample returns the sample index of the i-th arrived process.
func (v *SyncView) Sample(i int) int { return v.sps[i].group }

// Params returns the parameters drawn so far by the i-th arrived process.
func (v *SyncView) Params(i int) map[string]float64 { return v.sps[i].Params() }

// Value reads a value the i-th arrived process has committed so far.
func (v *SyncView) Value(i int, x string) (any, bool) { return v.sps[i].Get(x) }

// barrier implements the @sync rendezvous for one region. Release happens
// when every not-yet-finished sampling process of the region has arrived.
type barrier struct {
	rs *regionState

	mu      sync.Mutex
	waiters []chan struct{}
	arrived []*SP
	cb      func(v *SyncView)
}

func newBarrier(rs *regionState) *barrier { return &barrier{rs: rs} }

func (b *barrier) arrive(sp *SP, cb func(v *SyncView)) {
	ch := make(chan struct{})
	b.mu.Lock()
	b.waiters = append(b.waiters, ch)
	b.arrived = append(b.arrived, sp)
	b.cb = cb
	b.mu.Unlock()
	b.maybeRelease()
	<-ch
}

// maybeRelease releases the barrier when the arrived set equals the set of
// live (launched or still to launch, not finished) sampling processes.
func (b *barrier) maybeRelease() {
	b.rs.mu.Lock()
	pending := b.rs.total - b.rs.done
	b.rs.mu.Unlock()

	b.mu.Lock()
	if len(b.waiters) == 0 || len(b.waiters) != pending {
		b.mu.Unlock()
		return
	}
	cb := b.cb
	sps := b.arrived
	waiters := b.waiters
	b.waiters, b.arrived, b.cb = nil, nil, nil
	b.mu.Unlock()

	if cb != nil {
		cb(&SyncView{sps: sps})
	}
	for _, ch := range waiters {
		close(ch)
	}
}
