package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/strategy"
)

// prunePanic is the sentinel used by Check to unwind a pruned sampling
// process; it never escapes the runtime.
type prunePanic struct{}

// abandonPanic is the sentinel used to unwind a sampling process whose
// attempt the runtime abandoned at a deadline (FaultPolicy); like prunePanic
// it never escapes the runtime.
type abandonPanic struct{}

// noSyncPanic unwinds a detached sampling process (one run by a remote
// worker) that reached a Sync barrier: the rendezvous needs the whole region
// co-resident, so the sample reports ExecResult.Unsupported and re-runs on
// the in-process path. Local processes always have a barrier, so this can
// only fire in detached runs.
type noSyncPanic struct{}

// spSlot tracks ownership of one Algorithm 1 pool slot across the attempts
// of one (group, fold) worker. Sync hands the slot back around the barrier,
// and the timeout monitor releases it when abandoning a wedged attempt — the
// CAS makes the hand-off race-free, so a slot is never released twice.
type spSlot struct{ held atomic.Bool }

// slotPool recycles pool-slot trackers across samples. A slot is only
// returned to the pool by a worker whose sampling process was not abandoned:
// an abandoned body goroutine may still hold a reference and race a stray
// (harmless on its own slot, fatal on a recycled one) release CAS.
var slotPool = sync.Pool{New: func() any { return &spSlot{} }}

func newHeldSlot() *spSlot {
	s := slotPool.Get().(*spSlot)
	s.held.Store(true)
	return s
}

// release returns the slot to the pool if this call transitions it out of
// held state; otherwise it is a no-op.
func (s *spSlot) release(t *Tuner) {
	if s.held.CompareAndSwap(true, false) {
		t.release()
	}
}

// reacquire blocks for a fresh slot and marks it held.
func (s *spSlot) reacquire(t *Tuner) {
	t.acquire(sched.SpawnS, 0)
	s.held.Store(true)
}

// pkv is one drawn parameter in an SP's compact snapshot: the interned
// symbol ID and the value. A snapshot is one allocation instead of a map.
type pkv struct {
	id uint32
	v  float64
}

// SP is a sampling process (mode S⟨pid⟩): one worker executing the body of
// a sampling region with one drawn parameter configuration. An SP and
// everything reachable only through it is confined to its goroutine.
//
// The per-process hot state (drawn parameters, committed results, loaded
// exposed values) is kept in slices indexed by the region's interned symbol
// IDs, so the steady-state Float/Load/Commit paths are a lock-free table
// lookup plus a slice access and allocate nothing. SP structs and their
// slice storage are pooled per region shape; a recycled SP is fully reset
// before reuse.
type SP struct {
	rs      *regionState
	group   int
	fold    int
	attempt int
	sampler strategy.Sampler
	shared  *svgShared
	slot    *spSlot
	ctx     context.Context

	// abandoned flips when the runtime gives up on this attempt (deadline or
	// region budget). The body goroutine checks it at the runtime's
	// re-entry points and unwinds via abandonPanic.
	abandoned atomic.Bool
	// atBarrier marks the process as blocked in a Sync rendezvous. The
	// per-sample deadline is suspended while it is set: a barrier waiter is
	// never the process wedging the region (the pending count releases the
	// barrier once only waiters remain), so abandoning it would punish the
	// victims of a hung sibling instead of the sibling.
	atBarrier atomic.Bool
	// resumed signals the deadline monitor that the process left a barrier
	// and its compute-phase deadline should restart.
	resumed chan struct{}
	// done carries the body goroutine's outcome to the monitor on the
	// deadline path; it is reused across the attempts and pool reuses of
	// this SP (an abandoned SP is never recycled, so a stale send can never
	// reach a fresh attempt).
	done chan error

	// Drawn parameters, indexed by symbol ID; porder records which IDs are
	// set, for cheap reset and ordered snapshots.
	pvals  []float64
	pset   []bool
	porder []uint32

	// Committed sample results, indexed by symbol ID, flushed in one batch
	// when the process finishes.
	cvals  []any
	cset   []bool
	corder []uint32

	// Loaded exposed values, revalidated against the exposed store's
	// version counter so repeated Loads never touch the store's locks.
	lvals  []any
	lset   []bool
	lorder []uint32
	lver   uint64

	// flush scratch, reused across pool generations.
	kvbuf   []store.KV
	ringbuf []any

	pruned bool
	score  float64
	scored bool
}

func (sp *SP) isAbandoned() bool { return sp.abandoned.Load() }

// Index returns this sampling process's sample index within the region
// (the SVG index under cross-validation).
func (sp *SP) Index() int { return sp.group }

// Attempt returns the 1-based attempt number of this sampling process under
// the region's retry policy (always 1 without retries).
func (sp *SP) Attempt() int { return sp.attempt }

// Context returns this attempt's context. It carries the per-sample deadline
// and the region budget (FaultPolicy); long-running sampler bodies should
// select on Context().Done() so an abandoned attempt unwinds promptly
// instead of leaking its goroutine.
func (sp *SP) Context() context.Context {
	if sp.ctx == nil {
		return context.Background()
	}
	return sp.ctx
}

// Fold returns the cross-validation fold of this process and the total
// fold count k. Without cross-validation it returns (0, 1).
func (sp *SP) Fold() (fold, k int) { return sp.fold, sp.rs.k }

// Float draws the tunable variable name from d (rule [SAMPLE]). Drawing
// the same name again returns the already-drawn value, and under
// cross-validation all processes of one SVG share the same draw.
func (sp *SP) Float(name string, d dist.Dist) float64 {
	if sp.isAbandoned() {
		panic(abandonPanic{})
	}
	if id, ok := sp.rs.syms.Lookup(name); ok && int(id) < len(sp.pset) && sp.pset[id] {
		return sp.pvals[id]
	}
	return sp.drawFloat(name, d)
}

// drawFloat is the first-draw path: intern the name, draw, and record.
func (sp *SP) drawFloat(name string, d dist.Dist) float64 {
	id := sp.rs.syms.Intern(name)
	if n := sp.rs.syms.Len(); len(sp.pset) < n {
		sp.pvals = append(sp.pvals, make([]float64, n-len(sp.pvals))...)
		sp.pset = append(sp.pset, make([]bool, n-len(sp.pset))...)
	}
	var v float64
	if sp.shared != nil {
		v = sp.shared.draw(name, sp.sampler, d)
	} else {
		v = sp.sampler.Draw(name, d)
	}
	sp.pvals[id] = v
	sp.pset[id] = true
	sp.porder = append(sp.porder, id)
	return v
}

// Int draws an integer-valued tunable variable.
func (sp *SP) Int(name string, d dist.Dist) int {
	return int(math.Round(sp.Float(name, d)))
}

// Pick draws one of the given options as a tunable variable.
func Pick[T any](sp *SP, name string, options []T) T {
	i := sp.Int(name, dist.Choice(len(options)))
	return options[i]
}

// Params returns a copy of every parameter this process has drawn so far.
func (sp *SP) Params() map[string]float64 {
	out := make(map[string]float64, len(sp.porder))
	for _, id := range sp.porder {
		out[sp.rs.syms.Name(id)] = sp.pvals[id]
	}
	return out
}

// appendParams appends the drawn parameters to dst in draw order — the
// region accumulates every sample's snapshot in one arena instead of one
// slice allocation per sample.
func (sp *SP) appendParams(dst []pkv) []pkv {
	for _, id := range sp.porder {
		dst = append(dst, pkv{id: id, v: sp.pvals[id]})
	}
	return dst
}

// Commit submits the sample result variable x (rule [AGGR-S]). The value
// becomes visible in the tuning process's aggregation store when this
// sampling process finishes. Committing x again overwrites.
//
// Values of type float64 and []float64 participate in the built-in
// aggregation strategies; any type may be committed for custom aggregation.
func (sp *SP) Commit(x string, v any) {
	if id, ok := sp.rs.syms.Lookup(x); ok && int(id) < len(sp.cset) && sp.cset[id] {
		sp.cvals[id] = v
		return
	}
	sp.commitSlow(x, v)
}

// commitSlow is the first-commit path for a variable.
func (sp *SP) commitSlow(x string, v any) {
	id := sp.rs.syms.Intern(x)
	if n := sp.rs.syms.Len(); len(sp.cset) < n {
		sp.cvals = append(sp.cvals, make([]any, n-len(sp.cvals))...)
		sp.cset = append(sp.cset, make([]bool, n-len(sp.cset))...)
	}
	sp.cvals[id] = v
	sp.cset[id] = true
	sp.corder = append(sp.corder, id)
}

// Get reads back a value this process has committed; Score callbacks use it.
func (sp *SP) Get(x string) (any, bool) {
	if id, ok := sp.rs.syms.Lookup(x); ok && int(id) < len(sp.cset) && sp.cset[id] {
		return sp.cvals[id], true
	}
	return nil, false
}

// MustGet is Get for values known to be committed; it panics otherwise.
func (sp *SP) MustGet(x string) any {
	v, ok := sp.Get(x)
	if !ok {
		panic(fmt.Sprintf("core: sample variable %q was not committed", x))
	}
	return v
}

// Check prunes this sampling process if ok is false (rule [CHECK]): the
// run terminates immediately, commits nothing, and is excluded from
// aggregation. Pruning long before the aggregation point is the white-box
// advantage black-box tuning cannot express.
func (sp *SP) Check(ok bool) {
	if !ok {
		panic(prunePanic{})
	}
}

// CheckFn is Check with a deferred condition, mirroring the cbChk callback.
func (sp *SP) CheckFn(fn func() bool) { sp.Check(fn()) }

// Work accounts units of computation performed by this sampling process;
// sampling-process work is parallelizable across the pool. A detached
// process accumulates locally — quantized per call exactly like the tuner
// does — and its total ships home with the sample result.
func (sp *SP) Work(units float64) {
	if units < 0 {
		panic("core: negative work")
	}
	if det := sp.rs.det; det != nil {
		det.workMilli.Add(int64(units * 1024))
		return
	}
	sp.rs.t.addWork(units, true)
}

// Load reads an exposed global-scope variable from inside a sampling
// process; the exposed store is shared with the tuning process. Loaded
// values are cached in the process against the store's version counter, so
// a kernel loop re-reading its inputs costs one atomic load per read
// instead of a store lock round-trip.
func (sp *SP) Load(name string) any {
	e := sp.rs.exposed
	if ver := e.Version(); ver != sp.lver {
		sp.resetLoadCache()
		sp.lver = ver
	}
	if id, ok := sp.rs.syms.Lookup(name); ok && int(id) < len(sp.lset) && sp.lset[id] {
		return sp.lvals[id]
	}
	return sp.loadSlow(name)
}

// loadSlow is the cache-miss path: read the store and remember the value.
func (sp *SP) loadSlow(name string) any {
	v := sp.rs.exposed.MustGet(globalScope, name)
	id := sp.rs.syms.Intern(name)
	if n := sp.rs.syms.Len(); len(sp.lset) < n {
		sp.lvals = append(sp.lvals, make([]any, n-len(sp.lvals))...)
		sp.lset = append(sp.lset, make([]bool, n-len(sp.lset))...)
	}
	sp.lvals[id] = v
	sp.lset[id] = true
	sp.lorder = append(sp.lorder, id)
	return v
}

func (sp *SP) resetLoadCache() {
	for _, id := range sp.lorder {
		sp.lvals[id] = nil
		sp.lset[id] = false
	}
	sp.lorder = sp.lorder[:0]
}

// reset clears every per-attempt trace of a recycled SP so the pool hands
// out indistinguishable-from-new processes.
func (sp *SP) reset() {
	for _, id := range sp.porder {
		sp.pset[id] = false
	}
	sp.porder = sp.porder[:0]
	for _, id := range sp.corder {
		sp.cvals[id] = nil
		sp.cset[id] = false
	}
	sp.corder = sp.corder[:0]
	sp.resetLoadCache()
	sp.lver = 0
	sp.kvbuf = sp.kvbuf[:0]
	sp.ringbuf = sp.ringbuf[:0]
	sp.rs = nil
	sp.sampler = nil
	sp.shared = nil
	sp.slot = nil
	sp.ctx = nil
	sp.pruned, sp.score, sp.scored = false, 0, false
	if sp.resumed != nil {
		select { // drop a coalesced resume token left by the previous use
		case <-sp.resumed:
		default:
		}
	}
}

// Sync blocks until every live sampling process of the region has reached
// the barrier, runs cb once on behalf of the tuning process (rule
// [SYNC-T]), and then releases all waiters (rule [SYNC-S]). Every sampling
// process of the region must call Sync the same number of times; processes
// that finish or are pruned stop counting toward the barrier.
//
// While blocked the process gives its scheduler slot back (Algorithm 1's
// wait() adjusts poolSize the same way), so a region larger than the pool
// cannot deadlock on its own barrier.
//
// An abandoned process (FaultPolicy deadline) unwinds here instead of
// arriving: its timeout outcome was already committed, so it no longer
// counts toward the rendezvous.
func (sp *SP) Sync(cb func(v *SyncView)) {
	if sp.isAbandoned() {
		panic(abandonPanic{})
	}
	if sp.rs.barrier == nil {
		// Detached process: the barrier lives with the dispatching tuner, so
		// this sample cannot run here at all. Unwind and report Unsupported.
		panic(noSyncPanic{})
	}
	t := sp.rs.t
	sp.atBarrier.Store(true)
	sp.slot.release(t)
	sp.rs.barrier.arrive(sp, cb)
	if sp.isAbandoned() {
		panic(abandonPanic{})
	}
	sp.slot.reacquire(t)
	if sp.resumed != nil {
		select { // coalescing signal: the monitor restarts the deadline
		case sp.resumed <- struct{}{}:
		default:
		}
	}
	// Publish the resume token before clearing atBarrier: a monitor that
	// observes atBarrier == false at its deadline is then guaranteed to find
	// the token and restart the deadline instead of abandoning a process
	// that spent the elapsed time blocked at the rendezvous.
	sp.atBarrier.Store(false)
	if sp.isAbandoned() {
		sp.slot.release(t)
		panic(abandonPanic{})
	}
}

// svgShared holds the parameter draws shared by the k processes of one
// sampling-and-validation group (Sec. IV-A): same sample values, different
// folds.
type svgShared struct {
	mu   sync.Mutex
	vals map[string]float64
}

func (s *svgShared) draw(name string, sampler strategy.Sampler, d dist.Dist) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vals[name]; ok {
		return v
	}
	v := sampler.Draw(name, d)
	s.vals[name] = v
	return v
}

// worker is one (group, fold) sampling worker: it owns a pool slot for the
// lifetime of the sample and recycles the slot and sampler when the sample
// finished cleanly. It runs as a plain goroutine method so launching a
// sample allocates no closure.
func (rs *regionState) worker(g, f int, sampler strategy.Sampler) {
	defer rs.wg.Done()
	slot := newHeldSlot()
	timedOut := rs.runSP(rs.ctx, g, f, slot, sampler, rs.body)
	slot.release(rs.t)
	if timedOut {
		// The abandoned body goroutine may still reference the slot and the
		// sampler; neither is safe to hand to another sample.
		return
	}
	slotPool.Put(slot)
	if rs.k == 1 {
		// Sole user of the sampler (cross-validation folds share theirs and
		// finish at different times; those samplers are not recycled).
		if rec, ok := sampler.(strategy.Recycler); ok {
			rec.Recycle()
		}
	}
}

// runSP executes one sampling process: draw, compute, commit, score — with
// the region's fault policy applied around it. Retryable failures re-attempt
// with deterministic backoff; a deadline or budget expiry abandons the
// attempt and commits the distinguished timeout outcome. Exactly one spDone
// is reported per (group, fold) slot regardless of attempts. It reports
// whether the sample ended in the abandoned/timed-out state.
func (rs *regionState) runSP(ctx context.Context, g, f int, slot *spSlot, sampler strategy.Sampler, body func(sp *SP) error) bool {
	t := rs.t
	fp := t.opts.Fault
	var sp *SP
	var err error
	timedOut := false
	for attempt := 1; ; attempt++ {
		sp, err, timedOut = rs.runAttempt(ctx, g, f, attempt, slot, sampler, body)
		if timedOut || err == nil || !IsRetryable(err) || attempt >= fp.attempts() || ctx.Err() != nil {
			break
		}
		t.ctr.retried.Add(1)
		if rs.ro != nil {
			rs.ro.retried.Inc()
		}
		t.opts.Trace.add(Event{Kind: EvSampleRetry, Region: rs.spec.Name,
			Sample: g, Round: attempt, Err: traceErr(err)})
		rs.recycleSP(sp) // the failed attempt's process is dead; reuse it
		sp = nil
		timer := time.NewTimer(fp.backoff(rs.seed, g, attempt+1))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			err = fmt.Errorf("%w during retry backoff: %v", ErrSampleTimeout, ctx.Err())
			timedOut = true
		}
		if timedOut {
			rs.spDoneTimeout(g, err)
			return true
		}
	}
	rs.spDone(sp, err, timedOut)
	return timedOut
}

// invokeBody runs the sampling body (and the Score callback) with the
// runtime's panic containment: Check unwinds as a prune, any other panic is
// contained and reported as the attempt's error, and abandonPanic is
// re-thrown for the goroutine wrapper to swallow.
func (rs *regionState) invokeBody(sp *SP, body func(sp *SP) error) (bodyErr error) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case prunePanic:
				sp.pruned = true
				rs.countPruned()
			case abandonPanic:
				panic(r)
			case noSyncPanic:
				rs.det.noSync = true
			default:
				bodyErr = fmt.Errorf("core: sampling process (sample %d, fold %d) panicked: %v\n%s",
					sp.group, sp.fold, r, debug.Stack())
				rs.countPanic()
			}
		}
	}()
	bodyErr = body(sp)
	if bodyErr == nil && rs.spec.Score != nil && !sp.isAbandoned() {
		sp.score = rs.spec.Score(sp)
		sp.scored = true
	}
	return bodyErr
}

// runAttempt executes one attempt of a sampling process under its deadline.
// Without a deadline, budget, or caller cancellation the body runs inline on
// the worker goroutine — the pre-fault-layer semantics with no extra
// goroutine or channel per attempt. Otherwise the body runs in its own
// goroutine; the calling worker acts as the monitor and, on deadline expiry,
// abandons the attempt — releasing the pool slot and reporting a timeout —
// while the body goroutine unwinds on its own once it observes the cancelled
// context (abandonPanic at the runtime re-entry points, or the body
// returning).
func (rs *regionState) runAttempt(ctx context.Context, g, f, attempt int, slot *spSlot,
	sampler strategy.Sampler, body func(sp *SP) error) (*SP, error, bool) {
	t := rs.t
	t.ctr.samples.Add(1)

	fp := t.opts.Fault
	sctx := ctx
	var cancel context.CancelFunc
	if fp.SampleTimeout > 0 {
		// The deadline is enforced by a monitor-owned timer rather than
		// context.WithTimeout so it can be suspended while the body waits at
		// a Sync barrier; the cancelable context still propagates abandonment
		// to the body via SP.Context.
		sctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	sp := rs.newSP(g, f, attempt, slot, sampler, sctx)
	if fp.SampleTimeout > 0 && sp.resumed == nil {
		sp.resumed = make(chan struct{}, 1)
	}

	if rs.ro != nil {
		t0 := time.Now()
		defer rs.ro.sampleDur.ObserveSince(t0)
	}

	if sctx.Done() == nil {
		// No deadline, budget, or caller cancellation anywhere: run the body
		// inline — exactly the pre-fault-layer semantics.
		return sp, rs.invokeBody(sp, body), false
	}

	done := sp.done
	if done == nil {
		done = make(chan error, 1)
		sp.done = done
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abandonPanic); ok {
					// The monitor already reported this attempt as timed
					// out; nobody is listening for its outcome.
					return
				}
				panic(r)
			}
		}()
		done <- rs.invokeBody(sp, body)
	}()

	abandon := func(cause error) (*SP, error, bool) {
		// Abandon the attempt: commit the timeout outcome and release the
		// wedged slot so Algorithm 1 admission keeps flowing. The body
		// goroutine is not killed — it unwinds when it next touches the
		// runtime or observes SP.Context; a body that ignores both keeps its
		// goroutine until it returns on its own.
		sp.abandoned.Store(true)
		if cancel != nil {
			cancel()
		}
		slot.release(t)
		return sp, fmt.Errorf("%w: %v", ErrSampleTimeout, cause), true
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	if fp.SampleTimeout > 0 {
		timer = time.NewTimer(fp.SampleTimeout)
		defer timer.Stop()
		timerC = timer.C
	}
	for {
		select {
		case err := <-done:
			return sp, err, false
		case <-ctx.Done():
			// Region budget exhausted or the caller cancelled the run: hard
			// abandonment, barrier or not.
			return abandon(ctx.Err())
		case <-timerC:
			if sp.atBarrier.Load() {
				// The deadline covers compute phases only. A process blocked
				// at the Sync barrier is never the one wedging the region (the
				// pending count releases the barrier once only waiters
				// remain), so suspend the deadline until it resumes.
				timerC = nil
				continue
			}
			if sp.resumed != nil {
				select {
				case <-sp.resumed:
					// The process left a barrier concurrently with the
					// deadline firing: the elapsed time was spent waiting,
					// not computing, so restart the deadline.
					timer.Reset(fp.SampleTimeout)
					timerC = timer.C
					continue
				default:
				}
			}
			return abandon(fmt.Errorf("sample deadline %v exceeded", fp.SampleTimeout))
		case <-sp.resumed:
			// The body left a barrier: restart the compute-phase deadline.
			if timer != nil {
				if timerC != nil && !timer.Stop() {
					select { // drain a concurrently fired timer
					case <-timer.C:
					default:
					}
				}
				timer.Reset(fp.SampleTimeout)
				timerC = timer.C
			}
		}
	}
}

// noteOutcome records the per-outcome counters and trace events of one
// finished (group, fold) slot.
func (rs *regionState) noteOutcome(g int, err error, timedOut, pruned bool, score float64) {
	switch {
	case timedOut:
		rs.t.ctr.timeouts.Add(1)
		if rs.ro != nil {
			rs.ro.timeout.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleTimeout, Region: rs.spec.Name,
			Sample: g, Err: traceErr(err)})
	case err != nil:
		if rs.ro != nil {
			rs.ro.failed.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleFailed, Region: rs.spec.Name,
			Sample: g, Err: traceErr(err)})
	case pruned:
		if rs.ro != nil {
			rs.ro.pruned.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSamplePruned, Region: rs.spec.Name, Sample: g})
	default:
		if rs.ro != nil {
			rs.ro.done.Inc()
		}
		rs.t.opts.Trace.add(Event{Kind: EvSampleDone, Region: rs.spec.Name,
			Sample: g, Score: score})
	}
}

// spDoneTimeout finishes a (group, fold) slot whose retry backoff was cut
// short by cancellation: there is no live SP to read, only the outcome.
func (rs *regionState) spDoneTimeout(g int, err error) {
	rs.noteOutcome(g, err, true, false, 0)
	rs.mu.Lock()
	if rs.errs[g] == nil {
		rs.errs[g] = err
	}
	rs.done++
	rs.mu.Unlock()
	rs.barrier.maybeRelease()
}

// spDone commits the finished sampling process's results into the region
// (the parent side of rule [AGGR-S]) and advances the barrier bookkeeping.
// A timed-out process contributes nothing but its distinguished outcome: the
// monitor must not read the abandoned body's mutable state, so only the
// immutable sample index is touched on that path — and the SP itself is
// never recycled, since the abandoned body goroutine may still be running.
//
// A successful process's commits are flushed in batches: one ring batch for
// incrementally aggregated variables (one lock round-trip instead of one per
// value) and one store batch for the rest.
func (rs *regionState) spDone(sp *SP, err error, timedOut bool) {
	g := sp.group
	if timedOut {
		rs.noteOutcome(g, err, true, false, 0)
		rs.mu.Lock()
		if rs.errs[g] == nil {
			rs.errs[g] = err
		}
		rs.done++
		rs.mu.Unlock()
		rs.barrier.maybeRelease()
		return
	}
	rs.noteOutcome(g, err, false, sp.pruned, sp.score)

	ok := err == nil && !sp.pruned
	if ok && sp.fold == 0 {
		// Partition this process's commits into the ring batch (incremental
		// variables with a live ring) and the store batch (everything else),
		// in commit order.
		for _, id := range sp.corder {
			x := rs.syms.Name(id)
			v := sp.cvals[id]
			if _, inc := rs.incs[x]; inc && rs.ring != nil {
				// Incremental path: hand the value to the tuning process
				// through the bounded ring and do not retain it. With a
				// single incremental variable the name is implied, so the
				// committed value rides the ring as-is (it is already boxed);
				// only multi-variable regions pay a (name, value) pair.
				if rs.soleInc != nil {
					sp.ringbuf = append(sp.ringbuf, v)
				} else {
					sp.ringbuf = append(sp.ringbuf, ringItem{x: x, v: v})
				}
				continue
			}
			sp.kvbuf = append(sp.kvbuf, store.KV{X: x, V: v})
		}
		if len(sp.ringbuf) > 0 {
			// Flushed outside rs.mu: the ring applies backpressure when the
			// drain loop falls behind, and blocking under the region lock
			// would stall every other finishing process.
			rs.ring.PutBatch(sp.ringbuf)
		}
	}

	rs.mu.Lock()
	switch {
	case err != nil:
		if rs.errs[g] == nil {
			rs.errs[g] = err
		}
	case sp.pruned:
		rs.pruned[g] = true
	default:
		if !rs.haveParams[g] {
			rs.haveParams[g] = true
			off := len(rs.arena)
			rs.arena = sp.appendParams(rs.arena)
			rs.spans[g] = span{off, len(rs.arena) - off}
		}
		if sp.fold == 0 {
			for _, kv := range sp.kvbuf {
				if a, inc := rs.incs[kv.X]; inc {
					a.Add(kv.V)
				}
			}
		}
		if sp.scored {
			rs.scoreSum[g] += sp.score
			rs.scoreCnt[g]++
		}
	}
	rs.done++
	rs.mu.Unlock()
	if ok && sp.fold == 0 && len(sp.kvbuf) > 0 {
		rs.store.PutBatch(g, sp.kvbuf)
	}
	rs.barrier.maybeRelease()
	rs.recycleSP(sp)
}

// SyncView is what a barrier callback sees: the sampling processes blocked
// at the barrier, with their drawn parameters and the values they have
// committed so far.
type SyncView struct{ sps []*SP }

// Count reports how many sampling processes reached the barrier.
func (v *SyncView) Count() int { return len(v.sps) }

// Sample returns the sample index of the i-th arrived process.
func (v *SyncView) Sample(i int) int { return v.sps[i].group }

// Params returns the parameters drawn so far by the i-th arrived process.
func (v *SyncView) Params(i int) map[string]float64 { return v.sps[i].Params() }

// Value reads a value the i-th arrived process has committed so far.
func (v *SyncView) Value(i int, x string) (any, bool) { return v.sps[i].Get(x) }

// barrier implements the @sync rendezvous for one region. Release happens
// when every not-yet-finished sampling process of the region has arrived.
type barrier struct {
	rs *regionState

	mu      sync.Mutex
	waiters []chan struct{}
	arrived []*SP
	cb      func(v *SyncView)
}

func newBarrier(rs *regionState) *barrier { return &barrier{rs: rs} }

func (b *barrier) arrive(sp *SP, cb func(v *SyncView)) {
	ch := make(chan struct{})
	b.mu.Lock()
	b.waiters = append(b.waiters, ch)
	b.arrived = append(b.arrived, sp)
	b.cb = cb
	b.mu.Unlock()
	b.maybeRelease()
	<-ch
}

// maybeRelease releases the barrier when the arrived set equals the set of
// live (launched or still to launch, not finished) sampling processes.
func (b *barrier) maybeRelease() {
	b.rs.mu.Lock()
	pending := b.rs.total - b.rs.done
	b.rs.mu.Unlock()

	b.mu.Lock()
	// Drop abandoned sampling processes from the rendezvous: their timeout
	// outcome is already committed, so they no longer count toward pending.
	// Closing their channel lets the body goroutine unwind via the
	// abandonment check in Sync.
	if len(b.arrived) > 0 {
		kw, ka := b.waiters[:0], b.arrived[:0]
		for i, sp := range b.arrived {
			if sp.isAbandoned() {
				close(b.waiters[i])
				continue
			}
			kw = append(kw, b.waiters[i])
			ka = append(ka, sp)
		}
		b.waiters, b.arrived = kw, ka
	}
	if len(b.waiters) == 0 || len(b.waiters) != pending {
		b.mu.Unlock()
		return
	}
	cb := b.cb
	sps := b.arrived
	waiters := b.waiters
	b.waiters, b.arrived, b.cb = nil, nil, nil
	b.mu.Unlock()

	if cb != nil {
		cb(&SyncView{sps: sps})
	}
	for _, ch := range waiters {
		close(ch)
	}
}
