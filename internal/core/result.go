package core

import (
	"errors"
	"math"

	"repro/internal/store"
)

// Result is the tuning process's view of a finished sampling region: the
// aggregation store (rules [LOADSAMPLE]), the built-in aggregates (rule
// [AGGR-T]), and per-sample params, scores, and statuses.
type Result struct {
	n          int
	store      *store.Agg
	syms       *store.Symbols
	aggregated map[string]any
	arena      []pkv  // all parameter snapshots, back to back
	spans      []span // per-sample [offset, length) into arena
	haveParams []bool
	scores     []float64
	pruned     []bool
	errs       []error
	minimize   bool
	degraded   bool
	timeouts   int
}

// N reports the number of sample slots in the region (including pruned and
// failed ones).
func (r *Result) N() int { return r.n }

// Len reports how many samples committed variable x.
func (r *Result) Len(x string) int { return r.store.Len(x) }

// Value loads the i-th sample outcome of x (the @loadS primitive). The
// boolean is false when sample i was pruned, failed, or never committed x.
func (r *Result) Value(x string, i int) (any, bool) { return r.store.Get(x, i) }

// MustValue is Value for outcomes known to exist; it panics otherwise.
func (r *Result) MustValue(x string, i int) any {
	v, ok := r.store.Get(x, i)
	if !ok {
		panic("core: no sample outcome for " + x)
	}
	return v
}

// Values returns all committed outcomes of x ordered by sample index.
func (r *Result) Values(x string) []any { return r.store.Vec(x) }

// Indices returns the sample indices that committed x, ascending.
func (r *Result) Indices(x string) []int { return r.store.Indices(x) }

// Vars returns the names of all committed sample result variables.
func (r *Result) Vars() []string { return r.store.Vars() }

// Aggregated returns the built-in aggregate of x, or nil when x had no
// built-in aggregation strategy or no sample committed it. The dynamic type
// matches the committed values: float64 for scalars, []float64 for vectors,
// []any for DEDUP.
func (r *Result) Aggregated(x string) any { return r.aggregated[x] }

// Params returns the parameter configuration drawn by sample i, or nil if
// the sample never completed.
func (r *Result) Params(i int) map[string]float64 {
	if !r.haveParams[i] {
		return nil
	}
	s := r.spans[i]
	out := make(map[string]float64, s.n)
	for _, kv := range r.arena[s.off : s.off+s.n] {
		out[r.syms.Name(kv.id)] = kv.v
	}
	return out
}

// Score returns sample i's score (averaged over cross-validation folds),
// or NaN when the sample was pruned, failed, or the region has no Score.
func (r *Result) Score(i int) float64 { return r.scores[i] }

// Scores returns a copy of all per-sample scores.
func (r *Result) Scores() []float64 { return append([]float64(nil), r.scores...) }

// Pruned reports whether sample i was pruned by Check (or cut by the work
// budget before launching).
func (r *Result) Pruned(i int) bool { return r.pruned[i] }

// Err returns the contained failure of sample i, if any.
func (r *Result) Err(i int) error { return r.errs[i] }

// TimedOut reports whether sample i was abandoned at a deadline or cut by
// the region budget — the distinguished timeout outcome of the fault layer.
func (r *Result) TimedOut(i int) bool {
	return errors.Is(r.errs[i], ErrSampleTimeout) || errors.Is(r.errs[i], ErrRegionBudget)
}

// Degraded reports whether the region completed with at least one timed-out
// or failed sample, i.e. the aggregate covers fewer samples than requested.
func (r *Result) Degraded() bool { return r.degraded }

// Timeouts reports how many samples ended in the timeout outcome.
func (r *Result) Timeouts() int { return r.timeouts }

// BestIndex returns the index of the best-scoring sample with respect to
// the region's Minimize flag, or -1 when no sample was scored.
func (r *Result) BestIndex() int {
	best := -1
	for i, s := range r.scores {
		if math.IsNaN(s) {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		if r.minimize && s < r.scores[best] || !r.minimize && s > r.scores[best] {
			best = i
		}
	}
	return best
}

// BestScore returns the best sample score, or NaN when nothing was scored.
func (r *Result) BestScore() float64 {
	i := r.BestIndex()
	if i < 0 {
		return math.NaN()
	}
	return r.scores[i]
}

// BestParams returns the parameter configuration of the best-scoring
// sample, or nil when nothing was scored.
func (r *Result) BestParams() map[string]float64 {
	i := r.BestIndex()
	if i < 0 {
		return nil
	}
	return r.Params(i)
}
