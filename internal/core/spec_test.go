package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

func sampleSpec() *JobSpec {
	return &JobSpec{
		Name:        "canny-night",
		Tenant:      "vision",
		Class:       PriorityHigh,
		Program:     "canny",
		Args:        map[string]string{"scene": "night", "stage1": "3"},
		Seed:        42,
		Budget:      1500,
		Incremental: true,
		Share:       2,
		MaxParallel: 4,
		Fault: &FaultSpec{
			SampleTimeout: 50 * time.Millisecond,
			RegionBudget:  time.Second,
			MaxAttempts:   3,
			Backoff:       time.Millisecond,
			BackoffFactor: 2,
			MaxBackoff:    100 * time.Millisecond,
			DegradeEmpty:  true,
		},
		Checkpoint: &CheckpointSpec{Every: 2, MinSlots: 3},
	}
}

func TestSpecRoundTrip(t *testing.T) {
	want := sampleSpec()
	data, err := EncodeSpec(want)
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Minimal spec: only the required fields, nil policies.
	min := &JobSpec{Name: "j", Program: "p", Seed: 7}
	data, err = EncodeSpec(min)
	if err != nil {
		t.Fatalf("EncodeSpec(min): %v", err)
	}
	got, err = DecodeSpec(data)
	if err != nil {
		t.Fatalf("DecodeSpec(min): %v", err)
	}
	if !reflect.DeepEqual(got, min) {
		t.Fatalf("minimal round trip mismatch:\n got %+v\nwant %+v", got, min)
	}
}

func TestSpecEncodingCanonical(t *testing.T) {
	a := sampleSpec()
	b := sampleSpec()
	// Rebuild the args map in a different insertion order; the encoding
	// must not depend on it.
	b.Args = map[string]string{"stage1": "3", "scene": "night"}
	da, err := EncodeSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := EncodeSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("equal specs encoded to different bytes")
	}
}

func TestSpecDecodeRefusals(t *testing.T) {
	good, err := EncodeSpec(sampleSpec())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("XXXX"), good[4:]...)
		if _, err := DecodeSpec(bad); !errors.Is(err, ErrSpecCorrupt) {
			t.Fatalf("got %v, want ErrSpecCorrupt", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = SpecVersion + 1 // single-byte uvarint
		if _, err := DecodeSpec(bad); !errors.Is(err, ErrSpecVersion) {
			t.Fatalf("got %v, want ErrSpecVersion", err)
		}
	})
	t.Run("flipped body byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x40
		if _, err := DecodeSpec(bad); !errors.Is(err, ErrSpecCorrupt) {
			t.Fatalf("got %v, want ErrSpecCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut += 7 {
			if _, err := DecodeSpec(good[:cut]); err == nil {
				t.Fatalf("decode of %d/%d bytes succeeded", cut, len(good))
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeSpec(nil); !errors.Is(err, ErrSpecCorrupt) {
			t.Fatalf("got %v, want ErrSpecCorrupt", err)
		}
	})
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"empty name", func(s *JobSpec) { s.Name = "" }},
		{"path separator in name", func(s *JobSpec) { s.Name = "a/b" }},
		{"dotdot in name", func(s *JobSpec) { s.Name = "a..b" }},
		{"empty program", func(s *JobSpec) { s.Program = "" }},
		{"unknown class", func(s *JobSpec) { s.Class = 9 }},
		{"negative share", func(s *JobSpec) { s.Share = -1 }},
		{"negative max_parallel", func(s *JobSpec) { s.MaxParallel = -2 }},
		{"negative budget", func(s *JobSpec) { s.Budget = -1 }},
		{"negative checkpoint every", func(s *JobSpec) { s.Checkpoint = &CheckpointSpec{Every: -1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sampleSpec()
			tc.mut(s)
			err := s.Validate()
			if !errors.Is(err, ErrSpecInvalid) {
				t.Fatalf("Validate() = %v, want ErrSpecInvalid", err)
			}
			if _, err := EncodeSpec(s); err == nil {
				t.Fatal("EncodeSpec accepted an invalid spec")
			}
		})
	}
	if err := sampleSpec().Validate(); err != nil {
		t.Fatalf("valid spec refused: %v", err)
	}
}

func TestPriorityClassJSON(t *testing.T) {
	for _, c := range []PriorityClass{PriorityLow, PriorityNormal, PriorityHigh} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var got PriorityClass
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got != c {
			t.Fatalf("JSON round trip: got %v, want %v", got, c)
		}
	}
	var c PriorityClass
	if err := json.Unmarshal([]byte(`""`), &c); err != nil || c != PriorityNormal {
		t.Fatalf("empty class: got %v, %v; want normal", c, err)
	}
	if err := json.Unmarshal([]byte(`"urgent"`), &c); !errors.Is(err, ErrSpecInvalid) {
		t.Fatalf("unknown class: got %v, want ErrSpecInvalid", err)
	}
}

func TestNewJobFromSpec(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{MaxPool: 4})
	job, err := rt.NewJobFromSpec(JobSpec{
		Name:    "spec-job",
		Program: "anything", // program resolution is the jobs manager's concern
		Seed:    11,
		Share:   2,
	})
	if err != nil {
		t.Fatalf("NewJobFromSpec: %v", err)
	}
	defer job.Close()
	if job.jobName != "spec-job" {
		t.Fatalf("job name %q, want spec-job", job.jobName)
	}
	if job.opts.Seed != 11 {
		t.Fatalf("seed %d, want 11", job.opts.Seed)
	}
	if _, err := rt.NewJobFromSpec(JobSpec{Program: "p"}); !errors.Is(err, ErrSpecInvalid) {
		t.Fatalf("invalid spec: got %v, want ErrSpecInvalid", err)
	}
}

func TestNoteQueuedJobsLoadStats(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{MaxPool: 2})
	rt.NoteQueuedJobs(false, 1)
	rt.NoteQueuedJobs(true, 1)
	rt.NoteQueuedJobs(true, 1)
	ls := rt.Load()
	if ls.JobsQueued != 3 || ls.HighJobsQueued != 2 {
		t.Fatalf("JobsQueued=%d HighJobsQueued=%d, want 3 and 2", ls.JobsQueued, ls.HighJobsQueued)
	}
	rt.NoteQueuedJobs(true, -2)
	rt.NoteQueuedJobs(false, -1)
	ls = rt.Load()
	if ls.JobsQueued != 0 || ls.HighJobsQueued != 0 {
		t.Fatalf("after drain: JobsQueued=%d HighJobsQueued=%d, want 0 and 0", ls.JobsQueued, ls.HighJobsQueued)
	}
}
