package core

import (
	"errors"
	"time"

	"repro/internal/dist"
)

// ErrSampleTimeout marks a sampling process abandoned by the runtime because
// it exceeded its per-sample deadline or the region's budget. It is a
// distinguished outcome, not a tuning-program bug: the region aggregates over
// whatever committed and Result.TimedOut reports the shortfall per sample.
var ErrSampleTimeout = errors.New("core: sampling process timed out")

// ErrRegionBudget marks a sample group that was never launched because the
// region's fault budget expired first.
var ErrRegionBudget = errors.New("core: region budget exhausted before launch")

// FaultPolicy configures the fault-tolerance layer of the sampling runtime.
// The zero value disables it entirely: no deadlines, no retries, exactly the
// paper's finish-or-panic semantics.
type FaultPolicy struct {
	// SampleTimeout is the deadline for one sampling-process attempt. When
	// it expires the runtime abandons the attempt: the pool slot is released,
	// a timeout outcome is committed, and the region proceeds without the
	// sample. The body goroutine itself cannot be killed — it is expected to
	// observe SP.Context and return; a body that ignores its context keeps
	// its goroutine alive until it returns on its own.
	SampleTimeout time.Duration
	// RegionBudget bounds a whole sampling round (all samples of one Region
	// round share it). When it expires, in-flight samples are abandoned as
	// timeouts and unlaunched groups fail with ErrRegionBudget.
	RegionBudget time.Duration
	// MaxAttempts is the total number of attempts per sample. Values <= 1
	// mean no retries. Only failures that are retryable (see Transient and
	// IsRetryable) are retried; panics, prunes, and timeouts are not.
	MaxAttempts int
	// Backoff is the base delay before the second attempt. Zero with
	// retries enabled defaults to 1ms.
	Backoff time.Duration
	// BackoffFactor is the exponential growth factor. Values < 1 default
	// to 2.
	BackoffFactor float64
	// MaxBackoff caps the per-attempt delay. Zero defaults to 1s.
	MaxBackoff time.Duration
	// DegradeEmpty makes a region whose samples all failed return its
	// (empty) Result without an error instead of the all-failed error, so a
	// pipeline can continue past a fully-faulted stage and inspect the
	// shortfall itself.
	DegradeEmpty bool
}

// active reports whether any part of the policy is enabled.
func (f FaultPolicy) active() bool {
	return f.SampleTimeout > 0 || f.RegionBudget > 0 || f.MaxAttempts > 1 || f.DegradeEmpty
}

// attempts returns the effective attempt count (>= 1).
func (f FaultPolicy) attempts() int {
	if f.MaxAttempts < 1 {
		return 1
	}
	return f.MaxAttempts
}

// backoff returns the delay before the given attempt (attempt >= 2) of
// sample group g, with exponential growth and deterministic jitter derived
// from the region seed: the same (seed, group, attempt) always produces the
// same delay, so fault schedules replay bit-identically.
func (f FaultPolicy) backoff(seed int64, g, attempt int) time.Duration {
	base := f.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	factor := f.BackoffFactor
	if factor < 1 {
		factor = 2
	}
	maxB := f.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	d := float64(base)
	for i := 2; i < attempt; i++ {
		d *= factor
		if d >= float64(maxB) {
			d = float64(maxB)
			break
		}
	}
	// Jitter in [0.5, 1.5): a 53-bit fraction from the SplitMix64 stream of
	// (seed, group, attempt).
	bits := dist.Mix(uint64(seed), uint64(g)<<16|uint64(attempt))
	frac := float64(bits>>11) / float64(1<<53)
	d *= 0.5 + frac
	if d > float64(maxB) {
		d = float64(maxB)
	}
	return time.Duration(d)
}

// retryable is the interface a retryable error implements; errors wrapped
// with Transient satisfy it, as do foreign errors that carry their own
// Retryable method (e.g. injected faults).
type retryable interface{ Retryable() bool }

// transientError wraps an error to mark it retryable.
type transientError struct{ err error }

func (e transientError) Error() string   { return "transient: " + e.err.Error() }
func (e transientError) Unwrap() error   { return e.err }
func (e transientError) Retryable() bool { return true }

// Transient marks err as retryable: a sampling process failing with it is
// retried under the region's FaultPolicy. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err: err}
}

// IsRetryable reports whether err is marked retryable anywhere in its chain.
func IsRetryable(err error) bool {
	var r retryable
	return errors.As(err, &r) && r.Retryable()
}
