// Package core implements the WBTuner runtime: the white-box program-tuning
// engine of "White-Box Program Tuning" (CGO 2019).
//
// A tuning program is ordinary Go code plus a small number of primitives:
//
//   - (*P).Region marks a sampling code region (the paper's @sampling ...
//     @aggregate pair). The body runs once per sampling process; the runtime
//     spawns the processes, throttles them through the Algorithm 1
//     scheduler, collects the committed sample results into the aggregation
//     store, and applies the region's built-in aggregation strategies.
//   - (*SP).Float / Int / Pick draw a tunable variable (@sample).
//   - (*SP).Commit submits a sample result variable (@aggregate, child side).
//   - (*SP).Check prunes a useless sample run (@check).
//   - (*SP).Sync is a mid-region barrier (@sync).
//   - (*P).Expose / Load / LoadFrom move values between the program store
//     and the exposed store (@expose, @load).
//   - (*P).Split spawns a child tuning process that continues the
//     computation with one chosen internal result (@split).
//
// The paper's runtime forks OS processes; here sampling and tuning processes
// are goroutines with isolated per-process state. See DESIGN.md for the
// substitution argument.
package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/strategy"
)

// Options configure a Tuner.
type Options struct {
	// MaxPool bounds the number of simultaneously live tuning + sampling
	// processes (Algorithm 1). Zero means twice the number of CPUs.
	MaxPool int
	// Seed makes every run reproducible. The zero seed is a valid seed.
	Seed int64
	// Incremental enables incremental aggregation (Sec. IV-B): sample
	// results for variables with a built-in aggregation strategy are folded
	// into the aggregate as they are committed instead of being retained
	// until the end of the region.
	Incremental bool
	// DisableScheduler turns Algorithm 1 off (every spawn is admitted
	// immediately). Used by the Fig. 10 ablation.
	DisableScheduler bool
	// Trace, when non-nil, records runtime events (region/round/sample
	// lifecycle, splits) for debugging and for rendering the tuning tree.
	Trace *Trace
	// Obs, when non-nil, receives the runtime's metrics: per-region
	// latency and sample-duration histograms, per-round sample outcome
	// counters, scheduler admission-wait and pool-occupancy metrics, and
	// incremental-aggregation ring metrics. Hot-path updates are atomic;
	// with Obs nil the runtime records nothing.
	Obs *obs.Registry
	// Budget, when positive, bounds the total work units the tuner may
	// spend (Work calls accumulate against it). Once exceeded, regions stop
	// launching new sampling processes. Work units stand in for the
	// paper's wall-clock tuning budgets.
	Budget float64
	// Fault configures the fault-tolerance layer: per-sample deadlines,
	// whole-region budgets, and the retry policy. The zero value disables
	// it (finish-or-panic semantics, as in the paper).
	Fault FaultPolicy
}

// Metrics report what a tuning run did. All counters are cumulative over
// the Tuner's lifetime.
type Metrics struct {
	// Regions is the number of Region invocations.
	Regions int64
	// Rounds is the number of sampling rounds (auto-tuned sampling may run
	// several rounds per region).
	Rounds int64
	// Samples is the number of sampling-process bodies started.
	Samples int64
	// Pruned counts sampling processes terminated by Check.
	Pruned int64
	// Panics counts sampling processes that panicked and were contained.
	Panics int64
	// Timeouts counts sampling processes abandoned at a deadline or budget.
	Timeouts int64
	// Retried counts sampling-process attempts re-run after a retryable
	// failure (one per extra attempt, so two retries of one sample count 2).
	Retried int64
	// Degraded counts regions that completed with at least one timed-out or
	// failed sample — the graceful-degradation shortfall.
	Degraded int64
	// Splits counts child tuning processes spawned with Split.
	Splits int64
	// WorkUnits is the total work executed (Work calls).
	WorkUnits float64
	// WorkSerial is the work executed by tuning processes (loading,
	// preprocessing, aggregation) — the part that stays on the critical
	// path under multi-core execution.
	WorkSerial float64
	// WorkParallel is the work executed by sampling processes — the part
	// a multi-core pool divides among workers.
	WorkParallel float64
	// PeakRetained is the largest number of sample values retained
	// simultaneously by any region (aggregation-store entries plus
	// incremental-aggregator state) — the memory proxy for Fig. 10.
	PeakRetained int64
	// Scheduler reports the Algorithm 1 counters.
	Scheduler sched.Stats
}

// atomicFloat accumulates a float64 with a CAS loop. Add order is whatever
// order callers arrive in — the same serialization a mutex would give.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// counters holds the Tuner's run counters. Every field is updated atomically
// so per-sample accounting never serializes the pool on a tuner-wide mutex.
type counters struct {
	regions, rounds, samples    atomic.Int64
	pruned, panics, timeouts    atomic.Int64
	retried, degraded, splits   atomic.Int64
	peakRetained                atomic.Int64
	workUnits, workSer, workPar atomicFloat
}

// regionShape is the per-region-name state the Tuner accumulates across
// rounds: the interned symbol table for the region's variable names, the
// recycling pool for its sampling-process structs (region bodies draw and
// commit the same variables every round, so a pooled SP's slices are already
// the right size), and the feedback history feedback-driven strategies read.
// Keeping feedback here, under its own mutex, takes the per-sample feedback
// path off any tuner-global lock.
type regionShape struct {
	syms *store.Symbols
	pool sync.Pool // *SP

	fbMu     sync.Mutex
	feedback []strategy.Feedback
}

// Tuner is the white-box tuning engine. Create one per tuning task with New
// and start the program with Run. A Tuner is safe for use by the multiple
// tuning and sampling processes it manages.
type Tuner struct {
	opts    Options
	sched   *sched.Scheduler
	exposed *store.Exposed
	obsv    *tunerObs // nil when Options.Obs is nil

	workMilli int64 // atomic; total work in 1/1024 units
	ctr       counters
	nextPID   atomic.Int64

	shapes sync.Map // region name -> *regionShape
}

// New returns a Tuner with the given options.
func New(opts Options) *Tuner {
	if opts.MaxPool == 0 {
		opts.MaxPool = 2 * runtime.NumCPU()
	}
	if opts.MaxPool < 1 {
		panic("core: MaxPool must be positive")
	}
	t := &Tuner{
		opts:    opts,
		sched:   sched.New(opts.MaxPool, opts.DisableScheduler),
		exposed: store.NewExposed(),
		obsv:    newTunerObs(opts.Obs),
	}
	if opts.Obs != nil {
		t.sched.Instrument(opts.Obs)
	}
	return t
}

// shape returns the per-region-name state, creating it on first use.
func (t *Tuner) shape(name string) *regionShape {
	if v, ok := t.shapes.Load(name); ok {
		return v.(*regionShape)
	}
	v, _ := t.shapes.LoadOrStore(name, &regionShape{syms: store.NewSymbols()})
	return v.(*regionShape)
}

// Run executes the tuning program fn as the root tuning process and waits
// for it and every split-off tuning process to finish. It returns the
// joined errors of the whole process tree.
func (t *Tuner) Run(fn func(p *P) error) error {
	return t.RunContext(context.Background(), fn)
}

// RunContext is Run under a caller-supplied context. Cancelling ctx cancels
// every region budget and per-sample deadline derived from it: in-flight
// samples are abandoned as timeouts, queued admissions unblock, and the
// process tree drains instead of wedging. ctx == nil means Background.
func (t *Tuner) RunContext(ctx context.Context, fn func(p *P) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	t.sched.Acquire(sched.SpawnT, 0)
	defer t.sched.Release()
	p := t.newP(ctx)
	err := fn(p)
	return errors.Join(err, p.Wait())
}

func (t *Tuner) newP(ctx context.Context) *P {
	return &P{t: t, pid: t.nextPID.Add(1), ctx: ctx}
}

// AddWork accounts units of computation against the budget; unattributed
// work counts as serial.
func (t *Tuner) AddWork(units float64) { t.addWork(units, false) }

func (t *Tuner) addWork(units float64, parallel bool) {
	if units < 0 {
		panic("core: negative work")
	}
	atomic.AddInt64(&t.workMilli, int64(units*1024))
	t.ctr.workUnits.Add(units)
	if parallel {
		t.ctr.workPar.Add(units)
	} else {
		t.ctr.workSer.Add(units)
	}
}

// WorkUsed reports the total work executed so far.
func (t *Tuner) WorkUsed() float64 {
	return float64(atomic.LoadInt64(&t.workMilli)) / 1024
}

// BudgetExceeded reports whether the configured work budget is spent.
// It is always false when no budget was configured.
func (t *Tuner) BudgetExceeded() bool {
	return t.opts.Budget > 0 && t.WorkUsed() >= t.opts.Budget
}

// Metrics returns a snapshot of the run counters.
func (t *Tuner) Metrics() Metrics {
	return Metrics{
		Regions:      t.ctr.regions.Load(),
		Rounds:       t.ctr.rounds.Load(),
		Samples:      t.ctr.samples.Load(),
		Pruned:       t.ctr.pruned.Load(),
		Panics:       t.ctr.panics.Load(),
		Timeouts:     t.ctr.timeouts.Load(),
		Retried:      t.ctr.retried.Load(),
		Degraded:     t.ctr.degraded.Load(),
		Splits:       t.ctr.splits.Load(),
		WorkUnits:    t.ctr.workUnits.Load(),
		WorkSerial:   t.ctr.workSer.Load(),
		WorkParallel: t.ctr.workPar.Load(),
		PeakRetained: t.ctr.peakRetained.Load(),
		Scheduler:    t.sched.Stats(),
	}
}

// feedbackFor returns a copy of the accumulated feedback for a region name,
// sorted best-first for the given direction.
func (t *Tuner) feedbackFor(name string, minimize bool) []strategy.Feedback {
	sh := t.shape(name)
	sh.fbMu.Lock()
	fb := append([]strategy.Feedback(nil), sh.feedback...)
	sh.fbMu.Unlock()
	strategy.SortBestFirst(fb, minimize)
	return fb
}

// maxFeedback bounds how much per-region feedback the tuner retains.
const maxFeedback = 64

func (t *Tuner) addFeedback(name string, fb []strategy.Feedback, minimize bool) {
	if len(fb) == 0 {
		return
	}
	sh := t.shape(name)
	sh.fbMu.Lock()
	defer sh.fbMu.Unlock()
	all := append(sh.feedback, fb...)
	strategy.SortBestFirst(all, minimize)
	if len(all) > maxFeedback {
		all = all[:maxFeedback]
	}
	sh.feedback = all
}

func (t *Tuner) notePeakRetained(v int64) {
	for {
		p := t.ctr.peakRetained.Load()
		if v <= p || t.ctr.peakRetained.CompareAndSwap(p, v) {
			return
		}
	}
}

// regionSeed derives a deterministic seed for a named region round.
func (t *Tuner) regionSeed(name string, round int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(mix(uint64(t.opts.Seed), h.Sum64()+uint64(round)))
}

// mix is the SplitMix64 finalizer (same as dist.Mix, duplicated to avoid a
// dependency cycle risk in future refactors is NOT a concern here; we call
// through a tiny local copy simply because the hash feeds rand seeds).
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15*(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// P is a tuning process: the manager of a pool of sampling processes
// (mode T⟨pid⟩ in the semantics). The root P is created by Run; further
// tuning processes come from Split.
type P struct {
	t   *Tuner
	pid int64
	ctx context.Context

	wg      sync.WaitGroup
	pending int64 // atomic; split children not yet finished
	errM    sync.Mutex
	errs    []error
}

// Tuner returns the engine this process belongs to.
func (p *P) Tuner() *Tuner { return p.t }

// PID returns the tuning process id (unique within the Tuner).
func (p *P) PID() int64 { return p.pid }

// Context returns the context this tuning process runs under (the RunContext
// context, inherited across Split). Region budgets derive from it.
func (p *P) Context() context.Context {
	if p.ctx == nil {
		return context.Background()
	}
	return p.ctx
}

// globalScope is the exposed-store scope used by the unqualified
// Expose/Load pair.
const globalScope = "global"

// Expose writes a value to the exposed store under the global scope
// (rule [EXPOSE]); callbacks and later stages read it back with Load.
func (p *P) Expose(name string, v any) { p.t.exposed.Set(globalScope, name, v) }

// ExposeIn writes a value to the exposed store under an explicit scope,
// mirroring the paper's name+scope encoding for same-named locals.
func (p *P) ExposeIn(scope, name string, v any) { p.t.exposed.Set(scope, name, v) }

// Load reads an exposed global-scope variable (rule [LOAD]). It panics if
// the variable was never exposed — always a tuning-program bug.
func (p *P) Load(name string) any { return p.t.exposed.MustGet(globalScope, name) }

// LoadFrom reads an exposed variable from an explicit scope.
func (p *P) LoadFrom(scope, name string) any { return p.t.exposed.MustGet(scope, name) }

// Work accounts units of computation performed by this tuning process.
func (p *P) Work(units float64) { p.t.AddWork(units) }

// Split spawns a child tuning process (rule [SPLIT]). fn is the
// continuation of the computation — everything the child should do after
// the split point. The child inherits access to the exposed store but gets
// a fresh aggregation context (the semantics gives the child an empty
// sample store). Split returns immediately; Wait collects the child's
// error.
func (p *P) Split(fn func(child *P) error) {
	p.t.ctr.splits.Add(1)
	p.t.obsv.noteSplit()
	p.t.opts.Trace.add(Event{Kind: EvSplit, PID: p.pid, Sample: -1})
	p.wg.Add(1)
	atomic.AddInt64(&p.pending, 1)
	go func() {
		defer p.wg.Done()
		defer atomic.AddInt64(&p.pending, -1)
		p.t.sched.Acquire(sched.SpawnT, 0)
		defer p.t.sched.Release()
		child := p.t.newP(p.ctx)
		err := fn(child)
		if werr := child.Wait(); werr != nil {
			err = errors.Join(err, werr)
		}
		if err != nil {
			p.errM.Lock()
			p.errs = append(p.errs, fmt.Errorf("split child %d: %w", child.pid, err))
			p.errM.Unlock()
		}
	}()
}

// Wait blocks until every tuning process split off from p has finished and
// returns their joined errors. While blocked, p hands its pool slot back so
// descendants can be admitted (deep split chains would otherwise deadlock
// on small pools).
func (p *P) Wait() error {
	if atomic.LoadInt64(&p.pending) > 0 {
		p.t.sched.Release()
		p.wg.Wait()
		p.t.sched.Acquire(sched.SpawnT, 0)
	} else {
		p.wg.Wait()
	}
	p.errM.Lock()
	defer p.errM.Unlock()
	err := errors.Join(p.errs...)
	p.errs = nil
	return err
}
