// Package core implements the WBTuner runtime: the white-box program-tuning
// engine of "White-Box Program Tuning" (CGO 2019).
//
// A tuning program is ordinary Go code plus a small number of primitives:
//
//   - (*P).Region marks a sampling code region (the paper's @sampling ...
//     @aggregate pair). The body runs once per sampling process; the runtime
//     spawns the processes, throttles them through the Algorithm 1
//     scheduler, collects the committed sample results into the aggregation
//     store, and applies the region's built-in aggregation strategies.
//   - (*SP).Float / Int / Pick draw a tunable variable (@sample).
//   - (*SP).Commit submits a sample result variable (@aggregate, child side).
//   - (*SP).Check prunes a useless sample run (@check).
//   - (*SP).Sync is a mid-region barrier (@sync).
//   - (*P).Expose / Load / LoadFrom move values between the program store
//     and the exposed store (@expose, @load).
//   - (*P).Split spawns a child tuning process that continues the
//     computation with one chosen internal result (@split).
//
// The paper's runtime forks OS processes; here sampling and tuning processes
// are goroutines with isolated per-process state. See DESIGN.md for the
// substitution argument.
package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/strategy"
)

// Options configure a single-job Tuner made with New. They combine what is
// runtime-wide under the Runtime/job split (pool size, scheduler mode,
// metrics registry, fault policy, executor — see RuntimeOptions) with the
// job-scoped settings (seed, budget, incremental aggregation, trace — see
// JobOptions); New builds a private Runtime from the former and one job
// from the latter.
type Options struct {
	// MaxPool bounds the number of simultaneously live tuning + sampling
	// processes (Algorithm 1). Zero means twice the number of CPUs.
	MaxPool int
	// Seed makes every run reproducible. The zero seed is a valid seed.
	Seed int64
	// Incremental enables incremental aggregation (Sec. IV-B): sample
	// results for variables with a built-in aggregation strategy are folded
	// into the aggregate as they are committed instead of being retained
	// until the end of the region.
	Incremental bool
	// DisableScheduler turns Algorithm 1 off (every spawn is admitted
	// immediately). Used by the Fig. 10 ablation.
	DisableScheduler bool
	// Trace, when non-nil, records runtime events (region/round/sample
	// lifecycle, splits) for debugging and for rendering the tuning tree.
	Trace *Trace
	// Obs, when non-nil, receives the runtime's metrics: per-region
	// latency and sample-duration histograms, per-round sample outcome
	// counters, scheduler admission-wait and pool-occupancy metrics, and
	// incremental-aggregation ring metrics. Hot-path updates are atomic;
	// with Obs nil the runtime records nothing.
	Obs *obs.Registry
	// Budget, when positive, bounds the total work units the tuner may
	// spend (Work calls accumulate against it). Once exceeded, regions stop
	// launching new sampling processes. Work units stand in for the
	// paper's wall-clock tuning budgets.
	Budget float64
	// Fault configures the fault-tolerance layer: per-sample deadlines,
	// whole-region budgets, and the retry policy. The zero value disables
	// it (finish-or-panic semantics, as in the paper).
	Fault FaultPolicy
	// Executor, when non-nil, runs sampling processes somewhere other than
	// this process (e.g. a remote worker fleet). Regions the executor
	// declines — cross-validation groups, bodies with Sync barriers,
	// unresolvable bodies — fall back to the in-process path. Nil means
	// everything runs in-process, exactly as before.
	Executor Executor
	// Checkpoint, when non-nil, turns on checkpoint recording: the job
	// journals its rounds and periodically writes a resumable checkpoint to
	// the policy store. A recorded job supports a single Run.
	Checkpoint *CheckpointPolicy
	// Resume, when non-nil, starts the job from a checkpoint: the run
	// re-executes the tuning program from the beginning with the
	// checkpoint's seed, replaying pre-checkpoint rounds from the journal
	// and sampling live from the frontier on. New panics if the checkpoint
	// cannot be resumed here (completed, already resumed, or the pool is
	// below its MinSlots floor); Runtime.ResumeJob reports those as typed
	// errors instead.
	Resume *checkpoint.State
}

// Metrics report what a tuning run did. All counters are cumulative over
// the Tuner's lifetime.
type Metrics struct {
	// Regions is the number of Region invocations.
	Regions int64
	// Rounds is the number of sampling rounds (auto-tuned sampling may run
	// several rounds per region).
	Rounds int64
	// Samples is the number of sampling-process bodies started.
	Samples int64
	// Pruned counts sampling processes terminated by Check.
	Pruned int64
	// Panics counts sampling processes that panicked and were contained.
	Panics int64
	// Timeouts counts sampling processes abandoned at a deadline or budget.
	Timeouts int64
	// Retried counts sampling-process attempts re-run after a retryable
	// failure (one per extra attempt, so two retries of one sample count 2).
	Retried int64
	// Degraded counts regions that completed with at least one timed-out or
	// failed sample — the graceful-degradation shortfall.
	Degraded int64
	// Splits counts child tuning processes spawned with Split.
	Splits int64
	// WorkUnits is the total work executed (Work calls).
	WorkUnits float64
	// WorkSerial is the work executed by tuning processes (loading,
	// preprocessing, aggregation) — the part that stays on the critical
	// path under multi-core execution.
	WorkSerial float64
	// WorkParallel is the work executed by sampling processes — the part
	// a multi-core pool divides among workers.
	WorkParallel float64
	// PeakRetained is the largest number of sample values retained
	// simultaneously by any region (aggregation-store entries plus
	// incremental-aggregator state) — the memory proxy for Fig. 10.
	PeakRetained int64
	// Scheduler reports the Algorithm 1 counters.
	Scheduler sched.Stats
}

// counters holds the Tuner's run counters. Every field is updated atomically
// so per-sample accounting never serializes the pool on a tuner-wide mutex.
// Work is accounted in integer 1/1024 units ("milli" work): integer addition
// is order-independent, so work totals are bit-identical however sample
// completions interleave — and however samples are split between the local
// pool and a remote executor.
type counters struct {
	regions, rounds, samples  atomic.Int64
	pruned, panics, timeouts  atomic.Int64
	retried, degraded, splits atomic.Int64
	peakRetained              atomic.Int64
	workSer, workPar          atomic.Int64 // milli work units
}

// regionShape is the per-region-name state the Tuner accumulates across
// rounds: the interned symbol table for the region's variable names and the
// recycling pool for its sampling-process structs (region bodies draw and
// commit the same variables every round, so a pooled SP's slices are already
// the right size). Feedback history lives on the tuning processes, not here —
// see P.fbSeen.
type regionShape struct {
	syms *store.Symbols
	pool sync.Pool // *SP
}

// Tuner is one tuning job: the per-job handle carrying program structure
// (region shapes), the seed, the budget, the exposed store, and the
// feedback state, while the scheduler pool, executor, and metrics registry
// it runs on belong to its Runtime. Create a job on a shared Runtime with
// Runtime.NewJob, or a single job over a private runtime with New, and
// start the program with Run. A Tuner is safe for use by the multiple
// tuning and sampling processes it manages.
type Tuner struct {
	opts    Options
	rt      *Runtime
	sched   *sched.Scheduler // == rt's scheduler; cached for the hot path
	job     *sched.Job       // the job's admission handle (share + cap)
	jobID   uint64           // runtime-unique; namespaces executor state
	jobName string           // metric label; "" for single-job compat
	exposed *store.Exposed
	obsv    *tunerObs // nil when Options.Obs is nil
	rec     *recorder // nil unless checkpointing or resuming
	closed  atomic.Bool

	workMilli int64 // atomic; total work in 1/1024 units
	ctr       counters
	nextPID   atomic.Int64

	shapes sync.Map // region name -> *regionShape

	// execSkip marks region names the executor declined (BeginRound error or
	// an in-body Sync); their future rounds go straight to the local path.
	execSkip sync.Map // region name -> struct{}
}

// New returns a single-job Tuner over a private Runtime — the original
// one-job-per-engine surface, preserved unchanged: scheduling, seeding, and
// metric labels are identical to the pre-runtime engine. Programs that want
// several jobs over one pool use NewRuntime + Runtime.NewJob instead.
func New(opts Options) *Tuner {
	rt := NewRuntime(RuntimeOptions{
		MaxPool:          opts.MaxPool,
		DisableScheduler: opts.DisableScheduler,
		Obs:              opts.Obs,
		Fault:            opts.Fault,
		Executor:         opts.Executor,
	})
	opts.MaxPool = rt.opts.MaxPool
	if opts.Resume != nil {
		if err := rt.validateResume(opts.Resume); err != nil {
			panic("core: cannot resume checkpoint: " + err.Error())
		}
	}
	return rt.newTuner(opts, uint64(rt.nextJob.Add(1)), "", 1, 0)
}

// acquire blocks until the scheduler admits one of this job's processes.
func (t *Tuner) acquire(event sched.Event, todo int) {
	t.sched.AcquireJob(event, todo, t.job)
}

// acquireCtx is acquire with cancellation while queued.
func (t *Tuner) acquireCtx(ctx context.Context, event sched.Event, todo int) error {
	return t.sched.AcquireCtxJob(ctx, event, todo, t.job)
}

// release returns one of this job's pool slots.
func (t *Tuner) release() {
	t.sched.ReleaseJob(t.job)
}

// shape returns the per-region-name state, creating it on first use.
func (t *Tuner) shape(name string) *regionShape {
	if v, ok := t.shapes.Load(name); ok {
		return v.(*regionShape)
	}
	v, _ := t.shapes.LoadOrStore(name, &regionShape{syms: store.NewSymbols()})
	return v.(*regionShape)
}

// Run executes the tuning program fn as the root tuning process and waits
// for it and every split-off tuning process to finish. It returns the
// joined errors of the whole process tree.
func (t *Tuner) Run(fn func(p *P) error) error {
	return t.RunContext(context.Background(), fn)
}

// RunContext is Run under a caller-supplied context. Cancelling ctx cancels
// every region budget and per-sample deadline derived from it: in-flight
// samples are abandoned as timeouts, queued admissions unblock, and the
// process tree drains instead of wedging. ctx == nil means Background.
func (t *Tuner) RunContext(ctx context.Context, fn func(p *P) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.rec != nil && !t.rec.runOnce.CompareAndSwap(false, true) {
		// The journal keys rounds by split path; a second Run would collide
		// with the first's paths and corrupt the history.
		return errors.New("core: checkpoint recording supports a single Run per job")
	}
	t.acquire(sched.SpawnT, 0)
	defer t.release()
	p := t.newP(ctx)
	if t.rec != nil {
		p.path = "0"
	}
	err := errors.Join(fn(p), p.Wait())
	if t.rec != nil {
		err = errors.Join(err, t.rec.divergence())
		if err == nil && t.rec.policy.Store != nil {
			// Mark the checkpoint complete so a restart does not replay a
			// finished job. Like auto-checkpoints, a failed write is soft:
			// the run's result is already in hand.
			if werr := t.rec.writeCheckpoint(true); werr != nil {
				t.rec.saveMu.Lock()
				t.rec.saveErr = werr
				t.rec.saveMu.Unlock()
				t.obsv.noteCheckpointError()
			}
		}
	}
	return err
}

func (t *Tuner) newP(ctx context.Context) *P {
	return &P{t: t, pid: t.nextPID.Add(1), ctx: ctx}
}

// AddWork accounts units of computation against the budget; unattributed
// work counts as serial.
func (t *Tuner) AddWork(units float64) { t.addWork(units, false) }

func (t *Tuner) addWork(units float64, parallel bool) {
	if units < 0 {
		panic("core: negative work")
	}
	t.addWorkMilli(int64(units*1024), parallel)
}

// addWorkMilli accounts work already quantized to 1/1024 units. Detached
// sampling processes (remote workers) quantize per Work call with the same
// conversion and ship the per-attempt sum, so a distributed run's totals
// equal the in-process run's bit for bit.
func (t *Tuner) addWorkMilli(milli int64, parallel bool) {
	if milli == 0 {
		return
	}
	atomic.AddInt64(&t.workMilli, milli)
	if parallel {
		t.ctr.workPar.Add(milli)
	} else {
		t.ctr.workSer.Add(milli)
	}
}

// WorkUsed reports the total work executed so far.
func (t *Tuner) WorkUsed() float64 {
	return float64(atomic.LoadInt64(&t.workMilli)) / 1024
}

// BudgetExceeded reports whether the configured work budget is spent.
// It is always false when no budget was configured.
func (t *Tuner) BudgetExceeded() bool {
	return t.opts.Budget > 0 && t.WorkUsed() >= t.opts.Budget
}

// Metrics returns a snapshot of the run counters.
func (t *Tuner) Metrics() Metrics {
	return Metrics{
		Regions:      t.ctr.regions.Load(),
		Rounds:       t.ctr.rounds.Load(),
		Samples:      t.ctr.samples.Load(),
		Pruned:       t.ctr.pruned.Load(),
		Panics:       t.ctr.panics.Load(),
		Timeouts:     t.ctr.timeouts.Load(),
		Retried:      t.ctr.retried.Load(),
		Degraded:     t.ctr.degraded.Load(),
		Splits:       t.ctr.splits.Load(),
		WorkUnits:    t.WorkUsed(),
		WorkSerial:   float64(t.ctr.workSer.Load()) / 1024,
		WorkParallel: float64(t.ctr.workPar.Load()) / 1024,
		PeakRetained: t.ctr.peakRetained.Load(),
		Scheduler:    t.sched.Stats(),
	}
}

// maxFeedback bounds how much per-region feedback a strategy is handed.
const maxFeedback = 64

func (t *Tuner) notePeakRetained(v int64) {
	for {
		p := t.ctr.peakRetained.Load()
		if v <= p || t.ctr.peakRetained.CompareAndSwap(p, v) {
			return
		}
	}
}

// regionSeed derives a deterministic seed for a named region round.
func (t *Tuner) regionSeed(name string, round int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(mix(uint64(t.opts.Seed), h.Sum64()+uint64(round)))
}

// mix is the SplitMix64 finalizer (same as dist.Mix, duplicated to avoid a
// dependency cycle risk in future refactors is NOT a concern here; we call
// through a tiny local copy simply because the hash feeds rand seeds).
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15*(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// P is a tuning process: the manager of a pool of sampling processes
// (mode T⟨pid⟩ in the semantics). The root P is created by Run; further
// tuning processes come from Split.
type P struct {
	t   *Tuner
	pid int64
	ctx context.Context

	wg      sync.WaitGroup
	pending int64 // atomic; split children not yet finished
	errM    sync.Mutex
	errs    []error

	// Feedback visibility follows the split/wait causal order, so which
	// samples a feedback-driven strategy learns from is a function of the
	// program's structure, never of goroutine or remote-worker scheduling —
	// the property that keeps distributed runs bit-identical to local ones.
	// fbSeen is the feedback this process can see: the parent's view
	// snapshotted at the split point, plus everything its own completed
	// rounds produced or Wait merged back from children. fbNew is the subset
	// created under this process, handed to the parent when it Waits.
	// Both are touched only from the process's own logical thread (Split
	// snapshots before the child goroutine starts, Wait merges after the
	// children are done), so they need no lock; slices are never mutated in
	// place, so parent and child views may share backing arrays.
	fbSeen   map[string][]strategy.Feedback
	fbNew    map[string][]strategy.Feedback
	children []*P // split order; fixes the Wait merge order

	// Checkpoint identity (set only when the job records). path names this
	// tuning process by its position in the split tree ("0", "0.1", ...);
	// unlike pid, it is identical across a record and its replay, so it keys
	// the journal. nsplit counts this process's splits — children is pruned
	// by Wait, so it cannot supply the next child ordinal.
	path   string
	nsplit int
}

// feedbackFor returns the feedback visible to this tuning process for a
// region name, best-first, capped at maxFeedback entries.
func (p *P) feedbackFor(name string, minimize bool) []strategy.Feedback {
	fb := append([]strategy.Feedback(nil), p.fbSeen[name]...)
	strategy.SortBestFirst(fb, minimize)
	if len(fb) > maxFeedback {
		fb = fb[:maxFeedback]
	}
	return fb
}

// addFeedback records the feedback one of p's completed rounds produced.
func (p *P) addFeedback(name string, fb []strategy.Feedback) {
	if len(fb) == 0 {
		return
	}
	if p.fbSeen == nil {
		p.fbSeen = make(map[string][]strategy.Feedback)
	}
	if p.fbNew == nil {
		p.fbNew = make(map[string][]strategy.Feedback)
	}
	p.fbSeen[name] = appendFeedback(p.fbSeen[name], fb)
	p.fbNew[name] = appendFeedback(p.fbNew[name], fb)
}

// appendFeedback concatenates into a fresh backing array: views inherited
// across Split share slices, so in-place append would corrupt siblings.
func appendFeedback(dst, src []strategy.Feedback) []strategy.Feedback {
	out := make([]strategy.Feedback, 0, len(dst)+len(src))
	out = append(out, dst...)
	return append(out, src...)
}

// Tuner returns the engine this process belongs to.
func (p *P) Tuner() *Tuner { return p.t }

// PID returns the tuning process id (unique within the Tuner).
func (p *P) PID() int64 { return p.pid }

// Context returns the context this tuning process runs under (the RunContext
// context, inherited across Split). Region budgets derive from it.
func (p *P) Context() context.Context {
	if p.ctx == nil {
		return context.Background()
	}
	return p.ctx
}

// globalScope is the exposed-store scope used by the unqualified
// Expose/Load pair.
const globalScope = "global"

// Expose writes a value to the exposed store under the global scope
// (rule [EXPOSE]); callbacks and later stages read it back with Load.
func (p *P) Expose(name string, v any) { p.t.exposed.Set(globalScope, name, v) }

// ExposeIn writes a value to the exposed store under an explicit scope,
// mirroring the paper's name+scope encoding for same-named locals.
func (p *P) ExposeIn(scope, name string, v any) { p.t.exposed.Set(scope, name, v) }

// Load reads an exposed global-scope variable (rule [LOAD]). It panics if
// the variable was never exposed — always a tuning-program bug.
func (p *P) Load(name string) any { return p.t.exposed.MustGet(globalScope, name) }

// LoadFrom reads an exposed variable from an explicit scope.
func (p *P) LoadFrom(scope, name string) any { return p.t.exposed.MustGet(scope, name) }

// Work accounts units of computation performed by this tuning process.
func (p *P) Work(units float64) {
	if r := p.t.rec; r != nil {
		if r.noteEvent(p, checkpoint.EvWork, math.Float64bits(units), "") {
			return // replayed: the restored totals already include this work
		}
	}
	p.t.AddWork(units)
}

// Split spawns a child tuning process (rule [SPLIT]). fn is the
// continuation of the computation — everything the child should do after
// the split point. The child inherits access to the exposed store but gets
// a fresh aggregation context (the semantics gives the child an empty
// sample store). Split returns immediately; Wait collects the child's
// error.
func (p *P) Split(fn func(child *P) error) {
	suppress := false
	if r := p.t.rec; r != nil {
		suppress = r.noteEvent(p, checkpoint.EvSplit, uint64(p.nsplit), "")
	}
	if !suppress {
		p.t.ctr.splits.Add(1)
		p.t.obsv.noteSplit()
		p.t.opts.Trace.add(Event{Kind: EvSplit, PID: p.pid, Sample: -1})
	}
	// The child and its feedback view are fixed here, at the split point in
	// the parent's own thread — not when the goroutine gets scheduled — so
	// what the child can see never depends on timing.
	child := p.t.newP(p.ctx)
	if p.t.rec != nil {
		child.path = p.path + "." + strconv.Itoa(p.nsplit)
		p.nsplit++
	}
	if len(p.fbSeen) > 0 {
		child.fbSeen = make(map[string][]strategy.Feedback, len(p.fbSeen))
		for name, fb := range p.fbSeen {
			child.fbSeen[name] = fb
		}
	}
	p.children = append(p.children, child)
	p.wg.Add(1)
	atomic.AddInt64(&p.pending, 1)
	go func() {
		defer p.wg.Done()
		defer atomic.AddInt64(&p.pending, -1)
		p.t.acquire(sched.SpawnT, 0)
		defer p.t.release()
		err := fn(child)
		if werr := child.Wait(); werr != nil {
			err = errors.Join(err, werr)
		}
		if err != nil {
			p.errM.Lock()
			p.errs = append(p.errs, fmt.Errorf("split child %d: %w", child.pid, err))
			p.errM.Unlock()
		}
	}()
}

// Wait blocks until every tuning process split off from p has finished and
// returns their joined errors. While blocked, p hands its pool slot back so
// descendants can be admitted (deep split chains would otherwise deadlock
// on small pools).
func (p *P) Wait() error {
	if atomic.LoadInt64(&p.pending) > 0 {
		p.t.release()
		p.wg.Wait()
		p.t.acquire(sched.SpawnT, 0)
	} else {
		p.wg.Wait()
	}
	// Children are done (wg.Wait synchronizes with their goroutines): merge
	// the feedback they created into this process's view, in split order, so
	// the merged list is the same no matter which child finished first.
	for _, c := range p.children {
		for name, fb := range c.fbNew {
			p.addFeedback(name, fb)
		}
		c.fbNew, c.fbSeen = nil, nil
	}
	p.children = nil
	p.errM.Lock()
	defer p.errM.Unlock()
	err := errors.Join(p.errs...)
	p.errs = nil
	return err
}
