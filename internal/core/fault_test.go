package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// counterClock returns a logical clock for deterministic trace stamps.
func counterClock() func() int64 {
	var n int64
	return func() int64 { n++; return n }
}

// TestHungSamplerDegradesWithinDeadline is the fault-layer acceptance test:
// a region with a permanently-hung sampler completes within its deadline,
// aggregates the surviving samples, increments samples_timeout and
// regions_degraded in the Prometheus snapshot — and the same seed reproduces
// the identical trace twice.
func TestHungSamplerDegradesWithinDeadline(t *testing.T) {
	const hungSample = 2
	runOnce := func() (*Tuner, *Result, *obs.Registry, []byte) {
		reg := obs.NewRegistry()
		tr := NewTrace()
		tr.SetClock(counterClock())
		tuner := New(Options{
			MaxPool: 1, Seed: 42, Trace: tr, Obs: reg,
			Fault: FaultPolicy{SampleTimeout: 25 * time.Millisecond},
		})
		var res *Result
		start := time.Now()
		run(t, tuner, func(p *P) error {
			var err error
			res, err = p.Region(RegionSpec{Name: "hung", Samples: 6}, func(sp *SP) error {
				if sp.Index() == hungSample {
					// Permanently hung from the sampler's perspective: it
					// never produces a result; it only unwinds because the
					// runtime cancelled its context.
					<-sp.Context().Done()
					return sp.Context().Err()
				}
				sp.Commit("v", float64(sp.Index()))
				return nil
			})
			return err
		})
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("region took %v — the hung sampler wedged it", el)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return tuner, res, reg, buf.Bytes()
	}

	tuner, res, reg, trace1 := runOnce()

	if got := res.Len("v"); got != 5 {
		t.Fatalf("aggregated %d surviving samples, want 5", got)
	}
	if !res.TimedOut(hungSample) || !errors.Is(res.Err(hungSample), ErrSampleTimeout) {
		t.Fatalf("sample %d not marked timed out: %v", hungSample, res.Err(hungSample))
	}
	if !res.Degraded() || res.Timeouts() != 1 {
		t.Fatalf("degradation not reported: degraded=%v timeouts=%d", res.Degraded(), res.Timeouts())
	}
	m := tuner.Metrics()
	if m.Timeouts != 1 || m.Degraded != 1 {
		t.Fatalf("metrics: timeouts=%d degraded=%d, want 1/1", m.Timeouts, m.Degraded)
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`wbtuner_samples_timeout_total{region="hung"} 1`,
		`wbtuner_regions_degraded_total{region="hung"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("Prometheus snapshot missing %q:\n%s", want, prom.String())
		}
	}

	if !strings.Contains(string(trace1), `"kind":"sample-timeout"`) ||
		!strings.Contains(string(trace1), `"kind":"region-degraded"`) {
		t.Fatalf("trace missing fault events:\n%s", trace1)
	}
	_, _, _, trace2 := runOnce()
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("same seed produced different traces:\n--- first\n%s--- second\n%s", trace1, trace2)
	}
}

// A sampler failing with a retryable error is re-attempted with backoff and
// eventually commits; the retries are counted and traced.
func TestTransientFailuresAreRetried(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTrace()
	tuner := New(Options{
		MaxPool: 4, Seed: 7, Trace: tr, Obs: reg,
		Fault: FaultPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond},
	})
	var res *Result
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "flaky", Samples: 4}, func(sp *SP) error {
			if sp.Index()%2 == 0 && sp.Attempt() == 1 {
				return Transient(fmt.Errorf("flaky backend"))
			}
			sp.Commit("v", 1.0)
			return nil
		})
		return err
	})
	if got := res.Len("v"); got != 4 {
		t.Fatalf("committed %d, want all 4 after retries", got)
	}
	if m := tuner.Metrics(); m.Retried != 2 {
		t.Fatalf("Retried = %d, want 2", m.Retried)
	}
	if got := reg.Counter(MetricSamplesRetried, "region", "flaky").Value(); got != 2 {
		t.Fatalf("retried counter = %d, want 2", got)
	}
	retryEvents := 0
	for _, e := range tr.Events() {
		if e.Kind == EvSampleRetry {
			retryEvents++
		}
	}
	if retryEvents != 2 {
		t.Fatalf("retry trace events = %d, want 2", retryEvents)
	}
	if res.Degraded() {
		t.Fatal("retried-but-recovered region must not count as degraded")
	}
}

// A sample that exhausts its attempts keeps the last error; non-retryable
// errors are not retried at all.
func TestRetryPolicyRespectsRetryability(t *testing.T) {
	tuner := New(Options{
		MaxPool: 2, Seed: 1,
		Fault: FaultPolicy{MaxAttempts: 4, Backoff: 50 * time.Microsecond, DegradeEmpty: true},
	})
	attempts := make([]int, 2)
	var res *Result
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error {
			attempts[sp.Index()] = sp.Attempt()
			if sp.Index() == 0 {
				return Transient(errors.New("always failing"))
			}
			return errors.New("permanent, not retryable")
		})
		return err
	})
	if attempts[0] != 4 {
		t.Fatalf("retryable sample attempted %d times, want 4", attempts[0])
	}
	if attempts[1] != 1 {
		t.Fatalf("non-retryable sample attempted %d times, want 1", attempts[1])
	}
	if res.Err(0) == nil || !IsRetryable(res.Err(0)) {
		t.Fatalf("exhausted sample lost its error: %v", res.Err(0))
	}
}

// Backoff is exponential with deterministic jitter from the region seed.
func TestBackoffDeterministicJitter(t *testing.T) {
	fp := FaultPolicy{Backoff: time.Millisecond, BackoffFactor: 2, MaxBackoff: time.Second}
	if a, b := fp.backoff(1, 3, 2), fp.backoff(1, 3, 2); a != b {
		t.Fatalf("same inputs, different backoff: %v vs %v", a, b)
	}
	if a, b := fp.backoff(1, 3, 2), fp.backoff(2, 3, 2); a == b {
		t.Fatalf("seed not mixed into jitter: %v", a)
	}
	if a, b := fp.backoff(1, 3, 2), fp.backoff(1, 4, 2); a == b {
		t.Fatalf("group not mixed into jitter: %v", a)
	}
	// Exponential growth: attempt 6 delay stays within [0.5, 1.5) of
	// base*factor^4 and never exceeds the cap.
	d := fp.backoff(9, 0, 6)
	if d < 8*time.Millisecond || d > 24*time.Millisecond {
		t.Fatalf("attempt-6 backoff %v outside jittered exponential envelope", d)
	}
	for attempt := 2; attempt < 40; attempt++ {
		if d := fp.backoff(5, 1, attempt); d > time.Second {
			t.Fatalf("backoff %v exceeds cap at attempt %d", d, attempt)
		}
	}
}

// The region budget stops launching new samples; unlaunched groups carry the
// distinguished budget outcome and the pool fully drains.
func TestRegionBudgetCutsRound(t *testing.T) {
	tuner := New(Options{
		MaxPool: 1, Seed: 3,
		Fault: FaultPolicy{RegionBudget: 60 * time.Millisecond, SampleTimeout: 40 * time.Millisecond},
	})
	var res *Result
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "budget", Samples: 12}, func(sp *SP) error {
			select { // ~25ms of ctx-aware work per sample, 1 at a time
			case <-time.After(25 * time.Millisecond):
			case <-sp.Context().Done():
				return sp.Context().Err()
			}
			sp.Commit("v", 1.0)
			return nil
		})
		return err
	})
	committed := res.Len("v")
	if committed == 0 || committed == 12 {
		t.Fatalf("budget should cut the round partway, committed %d of 12", committed)
	}
	cut := 0
	for i := 0; i < 12; i++ {
		if errors.Is(res.Err(i), ErrRegionBudget) || errors.Is(res.Err(i), ErrSampleTimeout) {
			cut++
			if !res.TimedOut(i) {
				t.Fatalf("sample %d cut by budget but not TimedOut", i)
			}
		}
	}
	if committed+cut != 12 {
		t.Fatalf("outcomes don't partition the round: %d committed + %d cut != 12", committed, cut)
	}
	if !res.Degraded() {
		t.Fatal("budget-cut region must report degradation")
	}
	if got := tuner.sched.InUse(); got != 0 {
		t.Fatalf("pool occupancy %d after Run, want 0", got)
	}
}

// Cancelling the RunContext context drains in-flight samples as timeouts
// instead of wedging.
func TestRunContextCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tuner := New(Options{MaxPool: 4, Seed: 5, Fault: FaultPolicy{DegradeEmpty: true}})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := tuner.RunContext(ctx, func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "cancelled", Samples: 4}, func(sp *SP) error {
			<-sp.Context().Done()
			return sp.Context().Err()
		})
		return err
	})
	if err != nil {
		t.Fatalf("degraded-empty cancelled run returned %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v to drain", el)
	}
	if got := tuner.sched.InUse(); got != 0 {
		t.Fatalf("pool occupancy %d after cancelled run, want 0", got)
	}
}

// DegradeEmpty turns the all-failed error into an inspectable empty result;
// without it the historical error is preserved.
func TestDegradeEmptyPolicy(t *testing.T) {
	body := func(sp *SP) error { return errors.New("down") }
	strict := New(Options{MaxPool: 2, Seed: 1})
	err := strict.Run(func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 2}, body)
		return err
	})
	if err == nil {
		t.Fatal("all-failed region without DegradeEmpty must error")
	}
	soft := New(Options{MaxPool: 2, Seed: 1, Fault: FaultPolicy{DegradeEmpty: true}})
	run(t, soft, func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 2}, body)
		if err != nil {
			return err
		}
		if !res.Degraded() || res.Len("v") != 0 {
			return fmt.Errorf("unexpected degraded result: %v", res)
		}
		return nil
	})
}

// A sampler hanging before the barrier must not wedge the other processes'
// Sync rendezvous: the abandoned process is purged from the barrier.
func TestSyncSurvivesHungSampler(t *testing.T) {
	tuner := New(Options{
		MaxPool: 4, Seed: 11,
		Fault: FaultPolicy{SampleTimeout: 30 * time.Millisecond},
	})
	var res *Result
	start := time.Now()
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "barrier", Samples: 3}, func(sp *SP) error {
			if sp.Index() == 0 {
				<-sp.Context().Done() // hangs before ever reaching Sync
				return sp.Context().Err()
			}
			sp.Sync(func(v *SyncView) {})
			sp.Commit("v", float64(sp.Index()))
			return nil
		})
		return err
	})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("barrier wedged for %v behind the hung sampler", el)
	}
	if got := res.Len("v"); got != 2 {
		t.Fatalf("survivors committed %d, want 2", got)
	}
	if !res.TimedOut(0) {
		t.Fatal("hung sampler not reported as timeout")
	}
}

// Chaos faults compose with the runtime: injected hangs, panics, and
// transients across a region leave consistent outcome accounting.
func TestInjectedChaosOutcomesPartition(t *testing.T) {
	inj := faultinject.New(99, faultinject.Config{
		HangRate: 0.2, PanicRate: 0.2, TransientRate: 0.2, MaxDelay: time.Millisecond,
	})
	tuner := New(Options{
		MaxPool: 4, Seed: 99,
		Fault: FaultPolicy{SampleTimeout: 30 * time.Millisecond, MaxAttempts: 2,
			Backoff: 100 * time.Microsecond, DegradeEmpty: true},
	})
	const n = 16
	var res *Result
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "chaos", Samples: n}, func(sp *SP) error {
			f := inj.At("chaos", sp.Index(), sp.Attempt())
			if err := faultinject.Apply(sp.Context(), "chaos", f); err != nil {
				return err
			}
			sp.Commit("v", 1.0)
			return nil
		})
		return err
	})
	committed, failedOrTimeout := 0, 0
	for i := 0; i < n; i++ {
		if res.Err(i) != nil {
			failedOrTimeout++
		} else if _, ok := res.Value("v", i); ok {
			committed++
		}
	}
	if committed+failedOrTimeout != n {
		t.Fatalf("outcomes don't partition: %d + %d != %d", committed, failedOrTimeout, n)
	}
	if committed == 0 {
		t.Fatal("chaos rates should leave survivors")
	}
	if got := tuner.sched.InUse(); got != 0 {
		t.Fatalf("pool occupancy %d after chaos, want 0", got)
	}
}

// panicHelperForStackTest exists so the recovered panic's stack provably
// names the frame that crashed.
func panicHelperForStackTest() {
	panic("kaboom in helper")
}

// The contained-panic error must preserve the original stack (the fix for
// the message that used to lose it).
func TestContainedPanicKeepsStack(t *testing.T) {
	tuner := New(Options{MaxPool: 2, Seed: 1})
	var res *Result
	run(t, tuner, func(p *P) error {
		var err error
		res, err = p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error {
			if sp.Index() == 0 {
				panicHelperForStackTest()
			}
			sp.Commit("v", 1.0)
			return nil
		})
		return err
	})
	err := res.Err(0)
	if err == nil {
		t.Fatal("panicking sample reported no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "kaboom in helper") {
		t.Fatalf("panic value lost: %q", msg)
	}
	if !strings.Contains(msg, "panicHelperForStackTest") || !strings.Contains(msg, "goroutine") {
		t.Fatalf("panic error lost the original stack:\n%s", msg)
	}
}

func TestFaultEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvSampleTimeout, EvSampleRetry, EvRegionDegraded} {
		if s := k.String(); s == "" || s == "unknown" {
			t.Fatalf("kind %d has bad name %q", k, s)
		}
	}
}
