package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/dist"
)

func TestWorkSplitSerialVsParallel(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		p.Work(5) // tuning-process work is serial
		_, err := p.Region(RegionSpec{Name: "r", Samples: 4}, func(sp *SP) error {
			sp.Work(2) // sampling-process work is parallelizable
			return nil
		})
		return err
	})
	m := tuner.Metrics()
	if m.WorkSerial != 5 {
		t.Fatalf("WorkSerial = %g", m.WorkSerial)
	}
	if m.WorkParallel != 8 {
		t.Fatalf("WorkParallel = %g", m.WorkParallel)
	}
	if got := tuner.WorkUsed(); math.Abs(got-13) > 0.01 {
		t.Fatalf("WorkUsed = %g", got)
	}
}

func TestPeakRetainedTracksCommits(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 6}, func(sp *SP) error {
			sp.Commit("a", 1.0)
			sp.Commit("b", 2.0)
			return nil
		})
		return err
	})
	if got := tuner.Metrics().PeakRetained; got != 12 {
		t.Fatalf("PeakRetained = %d, want 12 (6 samples x 2 vars)", got)
	}
}

func TestIncrementalReducesPeakRetained(t *testing.T) {
	retained := func(incremental bool) int64 {
		tuner := New(Options{MaxPool: 8, Seed: 1, Incremental: incremental})
		run(t, tuner, func(p *P) error {
			_, err := p.Region(RegionSpec{
				Name: "r", Samples: 8,
				Aggregate: map[string]agg.Kind{"v": agg.Avg},
			}, func(sp *SP) error {
				sp.Commit("v", float64(sp.Index()))
				return nil
			})
			return err
		})
		return tuner.Metrics().PeakRetained
	}
	if on, off := retained(true), retained(false); on >= off {
		t.Fatalf("incremental retained %d >= one-shot %d", on, off)
	}
}

func TestFeedbackSharedAcrossSameNamedRegions(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		spec := RegionSpec{
			Name: "shared", Samples: 6, Minimize: true,
			Score: func(sp *SP) float64 {
				v, _ := sp.Get("x")
				return math.Abs(v.(float64) - 0.5)
			},
		}
		body := func(sp *SP) error {
			sp.Commit("x", sp.Float("x", dist.Uniform(0, 1)))
			return nil
		}
		if _, err := p.Region(spec, body); err != nil {
			return err
		}
		if _, err := p.Region(spec, body); err != nil {
			return err
		}
		fb := p.feedbackFor("shared", true)
		if len(fb) != 12 {
			return fmt.Errorf("feedback entries = %d, want 12 from two rounds", len(fb))
		}
		// Best-first ordering.
		for i := 1; i < len(fb); i++ {
			if fb[i].Score < fb[i-1].Score {
				return fmt.Errorf("feedback not sorted best-first")
			}
		}
		return nil
	})
}

// TestFeedbackCausalVisibility pins the determinism contract: a split child
// sees the feedback its parent had accumulated at the split point, sibling
// splits never see each other's in-flight feedback (that would depend on
// scheduling), and Wait merges the children's contributions back into the
// parent in split order.
func TestFeedbackCausalVisibility(t *testing.T) {
	spec := RegionSpec{
		Name: "causal", Samples: 3, Minimize: true,
		Score: func(sp *SP) float64 { return 0 },
	}
	body := func(sp *SP) error {
		sp.Commit("x", sp.Float("x", dist.Uniform(0, 1)))
		return nil
	}
	run(t, newTuner(), func(p *P) error {
		if _, err := p.Region(spec, body); err != nil {
			return err
		}
		start := make(chan struct{})
		lens := make([]int, 2)
		for i := 0; i < 2; i++ {
			i := i
			p.Split(func(c *P) error {
				<-start // both children in flight before either runs a round
				lens[i] = len(c.feedbackFor("causal", true))
				_, err := c.Region(spec, body)
				return err
			})
		}
		close(start)
		if err := p.Wait(); err != nil {
			return err
		}
		for i, n := range lens {
			if n != 3 {
				return fmt.Errorf("child %d saw %d entries at split, want the parent's 3", i, n)
			}
		}
		if n := len(p.feedbackFor("causal", true)); n != 9 {
			return fmt.Errorf("parent sees %d entries after Wait, want 9 (own round + both children)", n)
		}
		return nil
	})
}

func TestFeedbackCapped(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		for round := 0; round < 10; round++ {
			_, err := p.Region(RegionSpec{
				Name: "cap", Samples: 10, Minimize: true,
				Score: func(sp *SP) float64 { return 0 },
			}, func(sp *SP) error { return nil })
			if err != nil {
				return err
			}
		}
		if got := len(p.feedbackFor("cap", true)); got > maxFeedback {
			return fmt.Errorf("feedback grew to %d, cap is %d", got, maxFeedback)
		}
		return nil
	})
}

func TestResultEdgeCases(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 3}, func(sp *SP) error {
			sp.Commit("v", float64(sp.Index()))
			return nil
		})
		if err != nil {
			return err
		}
		// Unscored region: BestIndex is -1, BestScore NaN, BestParams nil.
		if res.BestIndex() != -1 || !math.IsNaN(res.BestScore()) || res.BestParams() != nil {
			return fmt.Errorf("unscored region Best* wrong: %d %v %v",
				res.BestIndex(), res.BestScore(), res.BestParams())
		}
		if got := res.Vars(); len(got) != 1 || got[0] != "v" {
			return fmt.Errorf("Vars = %v", got)
		}
		if vals := res.Values("v"); len(vals) != 3 {
			return fmt.Errorf("Values = %v", vals)
		}
		return nil
	})
}

func TestMustValuePanicsOnMissing(t *testing.T) {
	tuner := newTuner()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = tuner.Run(func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 1}, func(sp *SP) error {
			return nil
		})
		if err != nil {
			return err
		}
		res.MustValue("never-committed", 0)
		return nil
	})
}

func TestParamsCopyIsolated(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		res, err := p.Region(RegionSpec{Name: "r", Samples: 1}, func(sp *SP) error {
			sp.Float("x", dist.Uniform(0, 1))
			return nil
		})
		if err != nil {
			return err
		}
		a := res.Params(0)
		a["x"] = 999
		if b := res.Params(0); b["x"] == 999 {
			return fmt.Errorf("Params returned a shared map")
		}
		return nil
	})
}

func TestSPGetAndMustGet(t *testing.T) {
	run(t, newTuner(), func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 1}, func(sp *SP) error {
			if _, ok := sp.Get("missing"); ok {
				return fmt.Errorf("Get of missing reported ok")
			}
			sp.Commit("v", 42)
			if got := sp.MustGet("v"); got != 42 {
				return fmt.Errorf("MustGet = %v", got)
			}
			return nil
		})
		return err
	})
}

func TestTunerMetricsSnapshotIsolated(t *testing.T) {
	tuner := newTuner()
	run(t, tuner, func(p *P) error {
		_, err := p.Region(RegionSpec{Name: "r", Samples: 2}, func(sp *SP) error { return nil })
		return err
	})
	m1 := tuner.Metrics()
	m1.Samples = 999
	if tuner.Metrics().Samples == 999 {
		t.Fatal("Metrics returned internal state")
	}
}

// The ring-backed incremental path must produce the same aggregates as the
// direct path while bounding in-flight values.
func TestRingBackedIncrementalMatchesDirect(t *testing.T) {
	results := func(incremental bool) (float64, []float64) {
		tuner := New(Options{MaxPool: 8, Seed: 3, Incremental: incremental})
		var avg float64
		var mv []float64
		run(t, tuner, func(p *P) error {
			res, err := p.Region(RegionSpec{
				Name: "ring", Samples: 32,
				Aggregate: map[string]agg.Kind{"s": agg.Avg, "v": agg.MV},
			}, func(sp *SP) error {
				sp.Commit("s", float64(sp.Index()))
				pix := make([]float64, 4)
				if sp.Index()%3 == 0 {
					pix[0] = 1
				}
				pix[1] = 1
				sp.Commit("v", pix)
				return nil
			})
			if err != nil {
				return err
			}
			avg = res.Aggregated("s").(float64)
			mv = res.Aggregated("v").([]float64)
			return nil
		})
		return avg, mv
	}
	a1, v1 := results(false)
	a2, v2 := results(true)
	if a1 != a2 {
		t.Fatalf("Avg differs: direct %g vs ring %g", a1, a2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("MV differs at %d: %v vs %v", i, v1, v2)
		}
	}
}
