package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/strategy"
)

// Checkpoint/resume errors. Resume validation failures wrap the typed
// sentinels so callers can distinguish "try another runtime" (capacity)
// from "this checkpoint is spent" (completed, duplicate).
var (
	// ErrNotRecording reports a Checkpoint call on a job created without
	// Options.Checkpoint or Options.Resume.
	ErrNotRecording = errors.New("core: job is not recording checkpoints")
	// ErrCheckpointDiverged reports a resumed run whose re-execution did
	// not reproduce the journaled history — the tuning program is not
	// deterministic in its seed (wall-clock branches, unseeded randomness,
	// iteration over Go maps feeding tuning decisions).
	ErrCheckpointDiverged = errors.New("core: resumed run diverged from its checkpoint journal")
	// ErrResumeCapacity reports a resume into a Runtime whose scheduler
	// capacity is below the checkpoint's MinSlots floor.
	ErrResumeCapacity = errors.New("core: runtime capacity below checkpoint requirement")
	// ErrResumeCompleted reports a resume of a final (Complete) checkpoint.
	ErrResumeCompleted = errors.New("core: checkpoint marks a completed job")
	// ErrResumeDuplicate reports a second resume of the same checkpoint
	// capture in this process.
	ErrResumeDuplicate = errors.New("core: checkpoint already resumed")
)

// CheckpointPolicy configures periodic auto-checkpointing of a job. A job
// with a policy (or a resume state) records its round journal; every Every
// completed rounds the runtime quiesces the job at a round boundary and
// writes a checkpoint to Store under Label.
type CheckpointPolicy struct {
	// Store receives the checkpoints. Nil records the journal without
	// auto-saving (Job.Checkpoint still works).
	Store checkpoint.Store
	// Every is the auto-checkpoint period in completed rounds. Zero means 1.
	Every int
	// Label keys the checkpoint in Store. Empty means "job".
	Label string
	// MinSlots is the scheduler-capacity floor recorded in the checkpoint;
	// a Runtime with less capacity refuses to resume it. Zero means 2.
	MinSlots int
}

// SnapshotPrimer is implemented by executors that cache content-hashed
// exposed-store snapshots on remote workers (protocol v3). A resumed job
// primes the fleet with its restored store so the first rounds after a
// migration hit a warm cache instead of re-shipping.
type SnapshotPrimer interface {
	PrimeSnapshot(job uint64, e *store.Exposed) error
}

// resumedIDs guards against double-resume of one checkpoint capture:
// two live jobs replaying the same history would race their side effects
// (stores, metrics, auto-checkpoint labels).
var (
	resumedMu sync.Mutex
	resumedID = make(map[[16]byte]bool)
)

// pathSeq keys the journal: one P path's seq-th event.
type pathSeq struct {
	path string
	seq  uint64
}

// recorder is a job's checkpoint state: per-path event counters, the
// replay frontier, and the event/round journal. All mutable fields are
// touched only inside gate callbacks, which the gate mutex serializes, so
// the recorder needs no lock of its own.
type recorder struct {
	t      *Tuner
	policy CheckpointPolicy
	gate   sched.Quiesce

	runOnce atomic.Bool // a recorded job supports a single Run
	writing atomic.Bool // one auto-checkpoint writer at a time

	// Gate-serialized state.
	counts      map[string]uint64 // events seen per path, this life
	frontier    map[string]uint64 // loaded replay frontier (empty on cold start)
	events      map[pathSeq]checkpoint.Event
	rounds      map[pathSeq]*checkpoint.Round
	roundsSince int   // live rounds since the last auto-checkpoint
	due         bool  // an auto-checkpoint is owed
	diverged    error // sticky ErrCheckpointDiverged detail

	saveMu  sync.Mutex
	saveErr error // last auto-checkpoint write failure (soft)
}

// newRecorder attaches recording to t, seeding the journal and the tuner's
// restored state from st when resuming. Callers have already validated st.
func newRecorder(t *Tuner, pol *CheckpointPolicy, st *checkpoint.State) *recorder {
	r := &recorder{
		t:        t,
		counts:   make(map[string]uint64),
		frontier: make(map[string]uint64),
		events:   make(map[pathSeq]checkpoint.Event),
		rounds:   make(map[pathSeq]*checkpoint.Round),
	}
	if pol != nil {
		r.policy = *pol
	}
	if r.policy.Every <= 0 {
		r.policy.Every = 1
	}
	if r.policy.Label == "" {
		r.policy.Label = "job"
	}
	if r.policy.MinSlots <= 0 {
		r.policy.MinSlots = 2
	}
	if st == nil {
		return r
	}
	for p, c := range st.Frontier {
		r.frontier[p] = c
	}
	for _, ev := range st.Events {
		r.events[pathSeq{ev.Path, ev.Seq}] = ev
	}
	for i := range st.Rounds {
		jr := st.Rounds[i]
		r.rounds[pathSeq{jr.Path, jr.Seq}] = &jr
	}
	c := st.Counters
	t.ctr.regions.Store(c.Regions)
	t.ctr.rounds.Store(c.Rounds)
	t.ctr.samples.Store(c.Samples)
	t.ctr.pruned.Store(c.Pruned)
	t.ctr.panics.Store(c.Panics)
	t.ctr.timeouts.Store(c.Timeouts)
	t.ctr.retried.Store(c.Retried)
	t.ctr.degraded.Store(c.Degraded)
	t.ctr.splits.Store(c.Splits)
	t.ctr.peakRetained.Store(c.PeakRetained)
	t.ctr.workSer.Store(c.WorkSerialMilli)
	t.ctr.workPar.Store(c.WorkParaMilli)
	atomic.StoreInt64(&t.workMilli, c.WorkMilli)
	kvs := make([]store.ExposedKV, len(st.Exposed))
	for i, en := range st.Exposed {
		kvs[i] = store.ExposedKV{Scope: en.Scope, Name: en.Name, V: en.V}
	}
	t.exposed.SetEntries(kvs)
	t.obsv.noteResume()
	if pr, ok := t.opts.Executor.(SnapshotPrimer); ok {
		// Best effort: a cold worker cache only costs one snapshot re-ship.
		_ = pr.PrimeSnapshot(t.jobID, t.exposed)
	}
	return r
}

// setDiverged records the first divergence; later rounds fail fast on it.
func (r *recorder) setDiverged(detail string) {
	if r.diverged == nil {
		r.diverged = fmt.Errorf("%w: %s", ErrCheckpointDiverged, detail)
	}
}

// divergence reports the sticky divergence error, if any.
func (r *recorder) divergence() error {
	var err error
	r.gate.Mutate(func() { err = r.diverged })
	return err
}

// noteEvent journals (or, below the frontier, replays) one non-round event
// on p's path. It reports whether the event's side effects must be
// suppressed: a replayed event already contributed to the restored
// counters, metrics, and trace before the checkpoint was taken.
func (r *recorder) noteEvent(p *P, kind uint8, arg uint64, name string) (suppress bool) {
	r.gate.Mutate(func() {
		seq := r.counts[p.path]
		r.counts[p.path] = seq + 1
		if seq < r.frontier[p.path] {
			suppress = true
			want, ok := r.events[pathSeq{p.path, seq}]
			if !ok || want.Kind != kind || want.Name != name {
				r.setDiverged(fmt.Sprintf("path %s event %d: replay produced kind %d name %q, journal has kind %d name %q (missing=%v)",
					p.path, seq, kind, name, want.Kind, want.Name, !ok))
			}
			return
		}
		r.events[pathSeq{p.path, seq}] = checkpoint.Event{
			Path: p.path, Seq: seq, Kind: kind, Arg: arg, Name: name,
		}
	})
	return suppress
}

// enterRound admits one round on p's path: below the frontier it returns
// the journaled round for replay (the gate never registers it in flight);
// at or past the frontier it registers a live round, later retired by
// exitRound. A journal mismatch or a prior divergence fails the round.
func (r *recorder) enterRound(p *P, region string, round, n, k int) (rep *checkpoint.Round, seq uint64, err error) {
	r.gate.EnterRound(func() (live bool) {
		if r.diverged != nil {
			err = r.diverged
			return false
		}
		seq = r.counts[p.path]
		r.counts[p.path] = seq + 1
		if seq < r.frontier[p.path] {
			jr, ok := r.rounds[pathSeq{p.path, seq}]
			if !ok || jr.Region != region || jr.Round != round || jr.N != n || jr.K != k {
				r.setDiverged(fmt.Sprintf("path %s event %d: replay reached round %s/%d n=%d k=%d, journal disagrees (missing=%v)",
					p.path, seq, region, round, n, k, !ok))
				err = r.diverged
				return false
			}
			rep = jr
			return false
		}
		return true
	})
	return rep, seq, err
}

// exitRound retires a live round: it journals the round's complete outcome
// under (path, seq) and advances the auto-checkpoint clock.
func (r *recorder) exitRound(p *P, seq uint64, round int, rs *regionState, res *Result) {
	jr := buildJournalRound(p.path, seq, round, rs, res)
	r.gate.ExitRound(func() {
		r.rounds[pathSeq{p.path, seq}] = jr
		r.roundsSince++
		if r.policy.Store != nil && r.roundsSince >= r.policy.Every {
			r.due = true
		}
	})
}

// buildJournalRound captures one finished round as its journal entry.
// Aggregates are recorded as final folded values, never refolded at
// replay: AVG float sums and DEDUP order fold in completion order, so
// re-aggregation would not be deterministic.
func buildJournalRound(path string, seq uint64, round int, rs *regionState, res *Result) *checkpoint.Round {
	jr := &checkpoint.Round{
		Path:   path,
		Seq:    seq,
		Region: rs.spec.Name,
		Round:  round,
		N:      rs.n,
		K:      rs.k,
		FBHash: feedbackHash(rs.fb),
		Groups: make([]checkpoint.Group, rs.n),
	}
	names := make([]string, 0, 8)
	for x := range res.aggregated {
		names = append(names, x)
	}
	sort.Strings(names)
	for _, x := range names {
		jr.Aggregated = append(jr.Aggregated, checkpoint.KV{Name: x, V: res.aggregated[x]})
	}
	vars := rs.store.Vars()
	sort.Strings(vars)
	for g := 0; g < rs.n; g++ {
		jg := &jr.Groups[g]
		if rs.haveParams[g] {
			jg.HaveParams = true
			s := rs.spans[g]
			jg.Params = make([]checkpoint.Param, 0, s.n)
			for _, kv := range rs.arena[s.off : s.off+s.n] {
				jg.Params = append(jg.Params, checkpoint.Param{Name: rs.syms.Name(kv.id), V: kv.v})
			}
		}
		jg.ScoreSum = rs.scoreSum[g]
		jg.ScoreCnt = rs.scoreCnt[g]
		jg.Pruned = rs.pruned[g]
		jg.ErrKind, jg.ErrMsg = encodeGroupErr(rs.errs[g])
		for _, x := range vars {
			if v, ok := rs.store.Get(x, g); ok {
				jg.Commits = append(jg.Commits, checkpoint.KV{Name: x, V: v})
			}
		}
	}
	return jr
}

// encodeGroupErr flattens a group error for the journal, keeping the
// distinguished timeout/budget classification Result.TimedOut depends on.
func encodeGroupErr(err error) (uint8, string) {
	switch {
	case err == nil:
		return checkpoint.ErrNone, ""
	case errors.Is(err, ErrSampleTimeout):
		return checkpoint.ErrTimeout, err.Error()
	case errors.Is(err, ErrRegionBudget):
		return checkpoint.ErrBudget, err.Error()
	default:
		return checkpoint.ErrGeneric, err.Error()
	}
}

// replayErr reconstructs a journaled group error: the original message,
// plus an Is hook so errors.Is keeps classifying timeouts and budget cuts.
type replayErr struct {
	msg string
	is  error
}

func (e *replayErr) Error() string { return e.msg }

func (e *replayErr) Is(target error) bool { return e.is != nil && target == e.is }

// decodeGroupErr rebuilds a journaled group error.
func decodeGroupErr(kind uint8, msg string) error {
	switch kind {
	case checkpoint.ErrNone:
		return nil
	case checkpoint.ErrTimeout:
		return &replayErr{msg: msg, is: ErrSampleTimeout}
	case checkpoint.ErrBudget:
		return &replayErr{msg: msg, is: ErrRegionBudget}
	default:
		return &replayErr{msg: msg}
	}
}

// feedbackHash fingerprints the feedback a round launched with: replay
// recomputes the feedback through re-executed Split/Wait merges, and a
// hash mismatch is the earliest reliable divergence signal.
func feedbackHash(fb []strategy.Feedback) uint64 {
	h := fnv.New64a()
	var b [8]byte
	names := make([]string, 0, 8)
	for _, f := range fb {
		names = names[:0]
		for n := range f.Params {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h.Write([]byte(n))
			binary.BigEndian.PutUint64(b[:], math.Float64bits(f.Params[n]))
			h.Write(b[:])
		}
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f.Score))
		h.Write(b[:])
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// replayRound rebuilds a journaled round's Result and feedback without
// launching any sampling process. The reconstructed Result is
// observationally identical to the live one: same store contents, scores
// (identical division), params through the Result API, aggregates, and
// error classification — so the tuning program's decisions downstream of
// the round replay bit for bit.
func (r *recorder) replayRound(p *P, spec *RegionSpec, jr *checkpoint.Round) (*Result, error) {
	t := r.t
	fb := p.feedbackFor(spec.Name, spec.Minimize)
	if h := feedbackHash(fb); h != jr.FBHash {
		var derr error
		r.gate.Mutate(func() {
			r.setDiverged(fmt.Sprintf("path %s round %s/%d: replayed feedback hash %016x != journaled %016x",
				p.path, jr.Region, jr.Round, h, jr.FBHash))
			derr = r.diverged
		})
		return nil, derr
	}
	shape := t.shape(spec.Name)
	n := jr.N
	st := store.NewAgg()
	res := &Result{
		n:          n,
		store:      st,
		syms:       shape.syms,
		aggregated: make(map[string]any, len(jr.Aggregated)),
		spans:      make([]span, n),
		haveParams: make([]bool, n),
		scores:     make([]float64, n),
		pruned:     make([]bool, n),
		errs:       make([]error, n),
		minimize:   spec.Minimize,
	}
	for _, kv := range jr.Aggregated {
		res.aggregated[kv.Name] = kv.V
	}
	var kvbuf []store.KV
	failed, timeouts := 0, 0
	for g := 0; g < n && g < len(jr.Groups); g++ {
		jg := &jr.Groups[g]
		if jg.HaveParams {
			res.haveParams[g] = true
			off := len(res.arena)
			for _, pp := range jg.Params {
				res.arena = append(res.arena, pkv{id: shape.syms.Intern(pp.Name), v: pp.V})
			}
			res.spans[g] = span{off, len(res.arena) - off}
		}
		if jg.ScoreCnt > 0 {
			res.scores[g] = jg.ScoreSum / float64(jg.ScoreCnt)
		} else {
			res.scores[g] = math.NaN()
		}
		res.pruned[g] = jg.Pruned
		res.errs[g] = decodeGroupErr(jg.ErrKind, jg.ErrMsg)
		if res.errs[g] != nil {
			failed++
			if jg.ErrKind == checkpoint.ErrTimeout || jg.ErrKind == checkpoint.ErrBudget {
				timeouts++
			}
		}
		if len(jg.Commits) > 0 {
			kvbuf = kvbuf[:0]
			for _, kv := range jg.Commits {
				kvbuf = append(kvbuf, store.KV{X: kv.Name, V: kv.V})
			}
			st.PutBatch(g, kvbuf)
		}
	}
	res.degraded = failed > 0
	res.timeouts = timeouts

	// Feedback reconstruction mirrors finish(): the owning P's causal view
	// advances exactly as it did in the recorded life.
	var out []strategy.Feedback
	for g := 0; g < n; g++ {
		if !math.IsNaN(res.scores[g]) && res.haveParams[g] {
			out = append(out, strategy.Feedback{Params: res.Params(g), Score: res.scores[g]})
		}
	}
	p.addFeedback(spec.Name, out)

	t.obsv.noteReplayedRound()

	if failed == n && n > 0 && !t.opts.Fault.DegradeEmpty {
		return res, fmt.Errorf("core: region %q: every sampling process failed: %w",
			spec.Name, errors.Join(res.errs...))
	}
	return res, nil
}

// maybeAuto writes an owed auto-checkpoint. It runs on the round-exit
// thread with no scheduler slot held; the CAS keeps concurrent round exits
// from stacking checkpoint writers. Write failures are soft — the run
// continues, the failure is remembered and counted — because a missed
// checkpoint only widens the replay window, while aborting the job would
// turn a full disk into lost work.
func (r *recorder) maybeAuto() {
	due := false
	r.gate.Mutate(func() { due = r.due })
	if !due || !r.writing.CompareAndSwap(false, true) {
		return
	}
	defer r.writing.Store(false)
	if err := r.writeCheckpoint(false); err != nil {
		r.saveMu.Lock()
		r.saveErr = err
		r.saveMu.Unlock()
		r.t.obsv.noteCheckpointError()
	}
}

// SaveErr reports the most recent auto-checkpoint write failure, if any.
func (t *Tuner) SaveErr() error {
	if t.rec == nil {
		return nil
	}
	t.rec.saveMu.Lock()
	defer t.rec.saveMu.Unlock()
	return t.rec.saveErr
}

// writeCheckpoint quiesces the job, captures its state, and saves it to
// the policy store.
func (r *recorder) writeCheckpoint(complete bool) error {
	t0 := time.Now()
	var st *checkpoint.State
	r.gate.Run(func() { st = r.captureLocked(complete) })
	data, err := checkpoint.EncodeBytes(st)
	if err != nil {
		return err
	}
	if err := r.policy.Store.Save(r.policy.Label, data); err != nil {
		return err
	}
	r.t.obsv.noteCheckpoint(len(data), time.Since(t0))
	return nil
}

// captureLocked snapshots the job's round-boundary state. It runs under
// gate.Run: no round is in flight and no event can be journaled
// concurrently, so the counters, journal, and exposed store are mutually
// consistent. The emitted state carries only journal entries below the
// captured frontier; entries above it (loaded from a previous life but not
// yet re-reached) stay in the live journal for the ongoing replay but
// would be re-recorded identically, so the checkpoint omits them.
func (r *recorder) captureLocked(complete bool) *checkpoint.State {
	t := r.t
	st := &checkpoint.State{
		Seed:     t.opts.Seed,
		MinSlots: r.policy.MinSlots,
		Complete: complete,
		Counters: checkpoint.Counters{
			Regions:         t.ctr.regions.Load(),
			Rounds:          t.ctr.rounds.Load(),
			Samples:         t.ctr.samples.Load(),
			Pruned:          t.ctr.pruned.Load(),
			Panics:          t.ctr.panics.Load(),
			Timeouts:        t.ctr.timeouts.Load(),
			Retried:         t.ctr.retried.Load(),
			Degraded:        t.ctr.degraded.Load(),
			Splits:          t.ctr.splits.Load(),
			PeakRetained:    t.ctr.peakRetained.Load(),
			WorkMilli:       atomic.LoadInt64(&t.workMilli),
			WorkSerialMilli: t.ctr.workSer.Load(),
			WorkParaMilli:   t.ctr.workPar.Load(),
		},
		Frontier: make(map[string]uint64, len(r.counts)),
	}
	if _, err := crand.Read(st.ID[:]); err != nil {
		panic("core: checkpoint id: " + err.Error())
	}
	for p, c := range r.counts {
		st.Frontier[p] = c
	}
	for k, ev := range r.events {
		if k.seq < st.Frontier[k.path] {
			st.Events = append(st.Events, ev)
		}
	}
	sort.Slice(st.Events, func(i, j int) bool {
		if st.Events[i].Path != st.Events[j].Path {
			return st.Events[i].Path < st.Events[j].Path
		}
		return st.Events[i].Seq < st.Events[j].Seq
	})
	for k, jr := range r.rounds {
		if k.seq < st.Frontier[k.path] {
			st.Rounds = append(st.Rounds, *jr)
		}
	}
	sort.Slice(st.Rounds, func(i, j int) bool {
		if st.Rounds[i].Path != st.Rounds[j].Path {
			return st.Rounds[i].Path < st.Rounds[j].Path
		}
		return st.Rounds[i].Seq < st.Rounds[j].Seq
	})
	for _, kv := range t.exposed.Entries() {
		st.Exposed = append(st.Exposed, checkpoint.Entry{Scope: kv.Scope, Name: kv.Name, V: kv.V})
	}
	r.due = false
	r.roundsSince = 0
	return st
}

// CheckpointState quiesces the job at its next round boundary and returns
// its serializable state. It fails with ErrNotRecording unless the job was
// created with a CheckpointPolicy or a resume state.
func (t *Tuner) CheckpointState() (*checkpoint.State, error) {
	if t.rec == nil {
		return nil, ErrNotRecording
	}
	var st *checkpoint.State
	t.rec.gate.Run(func() { st = t.rec.captureLocked(false) })
	return st, nil
}

// Checkpoint writes the job's round-boundary checkpoint to w — the
// migration entry point: checkpoint, Close (end-job frame), resume the
// bytes on another Runtime with ResumeJob.
func (t *Tuner) Checkpoint(w io.Writer) error {
	st, err := t.CheckpointState()
	if err != nil {
		return err
	}
	t0 := time.Now()
	data, err := checkpoint.EncodeBytes(st)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	t.obsv.noteCheckpoint(len(data), time.Since(t0))
	return nil
}
