package opentuner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func sphereSpace() Space {
	return Space{
		{Name: "x", D: dist.Uniform(-5, 5)},
		{Name: "y", D: dist.Uniform(-5, 5)},
	}
}

// sphere is minimized at (1, -2).
func sphere(cfg map[string]float64) (float64, any) {
	dx := cfg["x"] - 1
	dy := cfg["y"] + 2
	return dx*dx + dy*dy, nil
}

func TestRunFindsSphereMinimum(t *testing.T) {
	tu := New(sphereSpace(), sphere, Options{Seed: 1, Minimize: true, MaxEvals: 400})
	best := tu.Run()
	if best.Score > 0.5 {
		t.Fatalf("best score %g after 400 evals; search is broken", best.Score)
	}
	if tu.Evals() != 400 {
		t.Fatalf("Evals = %d", tu.Evals())
	}
}

func TestRunMaximize(t *testing.T) {
	obj := func(cfg map[string]float64) (float64, any) {
		return -math.Abs(cfg["x"] - 3), nil
	}
	tu := New(Space{{Name: "x", D: dist.Uniform(0, 10)}}, obj, Options{Seed: 2, MaxEvals: 200})
	best := tu.Run()
	if math.Abs(best.Config["x"]-3) > 0.5 {
		t.Fatalf("best x = %g, want ~3", best.Config["x"])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		tu := New(sphereSpace(), sphere, Options{Seed: 7, Minimize: true, MaxEvals: 50})
		return tu.Run().Score
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the same search")
	}
}

func TestSeedMatters(t *testing.T) {
	run := func(seed int64) float64 {
		tu := New(sphereSpace(), sphere, Options{Seed: seed, Minimize: true, MaxEvals: 20})
		return tu.Run().Score
	}
	if run(1) == run(2) {
		t.Fatal("different seeds should explore differently")
	}
}

func TestStopHaltsTuning(t *testing.T) {
	evals := 0
	obj := func(cfg map[string]float64) (float64, any) {
		evals++
		return 0, nil
	}
	tu := New(sphereSpace(), obj, Options{
		Seed: 1, Minimize: true,
		Stop: func() bool { return evals >= 10 },
	})
	tu.Run()
	if evals != 10 {
		t.Fatalf("Stop did not halt: %d evals", evals)
	}
}

func TestCheckpointCalledEveryEval(t *testing.T) {
	var calls int
	var lastBest float64 = math.Inf(1)
	tu := New(sphereSpace(), sphere, Options{
		Seed: 3, Minimize: true, MaxEvals: 30,
		Checkpoint: func(evals int, best Eval) {
			calls++
			if evals != calls {
				t.Errorf("checkpoint evals = %d at call %d", evals, calls)
			}
			if best.Score > lastBest {
				t.Errorf("incumbent got worse: %g -> %g", lastBest, best.Score)
			}
			lastBest = best.Score
		},
	})
	tu.Run()
	if calls != 30 {
		t.Fatalf("checkpoint ran %d times", calls)
	}
}

func TestHistoryAndArtifacts(t *testing.T) {
	obj := func(cfg map[string]float64) (float64, any) {
		return cfg["x"], cfg["x"] * 2
	}
	tu := New(Space{{Name: "x", D: dist.Uniform(0, 1)}}, obj, Options{Seed: 4, MaxEvals: 5})
	tu.Run()
	h := tu.History()
	if len(h) != 5 {
		t.Fatalf("history length %d", len(h))
	}
	for _, ev := range h {
		if ev.Artifact.(float64) != ev.Config["x"]*2 {
			t.Fatal("artifact lost or mangled")
		}
	}
}

func TestConfigsStayInBounds(t *testing.T) {
	space := Space{
		{Name: "a", D: dist.Uniform(0, 1)},
		{Name: "b", D: dist.IntRange(3, 9)},
		{Name: "c", D: dist.LogUniform(0.01, 100)},
	}
	obj := func(cfg map[string]float64) (float64, any) {
		for _, p := range space {
			lo, hi := p.D.Bounds()
			if cfg[p.Name] < lo || cfg[p.Name] > hi {
				t.Fatalf("param %s = %g out of [%g, %g]", p.Name, cfg[p.Name], lo, hi)
			}
		}
		return cfg["a"], nil
	}
	New(space, obj, Options{Seed: 5, Minimize: true, MaxEvals: 300}).Run()
}

func TestEachTechniqueProposesFullConfig(t *testing.T) {
	space := sphereSpace()
	r := rand.New(rand.NewSource(1))
	history := []Eval{
		{Config: map[string]float64{"x": 0, "y": 0}, Score: 5},
		{Config: map[string]float64{"x": 1, "y": 1}, Score: 3},
		{Config: map[string]float64{"x": 2, "y": -1}, Score: 7},
	}
	best := &history[1]
	for _, tech := range DefaultTechniques() {
		// With and without history/best.
		for _, tc := range []struct {
			h []Eval
			b *Eval
		}{{nil, nil}, {history, best}} {
			cfg := tech.Propose(r, space, tc.h, tc.b, true)
			if len(cfg) != len(space) {
				t.Fatalf("%s proposed %d params, want %d", tech.Name(), len(cfg), len(space))
			}
			for _, p := range space {
				lo, hi := p.D.Bounds()
				if cfg[p.Name] < lo || cfg[p.Name] > hi {
					t.Fatalf("%s: %s = %g out of bounds", tech.Name(), p.Name, cfg[p.Name])
				}
			}
		}
	}
}

func TestBanditUsesEveryTechniqueOnce(t *testing.T) {
	b := newBandit(DefaultTechniques(), rand.New(rand.NewSource(1)))
	seen := map[string]bool{}
	for i := 0; i < len(DefaultTechniques()); i++ {
		tech := b.pick()
		seen[tech.Name()] = true
		b.reward(tech, false)
	}
	if len(seen) != len(DefaultTechniques()) {
		t.Fatalf("bandit warmup used %d distinct techniques", len(seen))
	}
}

func TestBanditFavorsRewardedTechnique(t *testing.T) {
	techs := []Technique{Random{}, HillClimb{Scale: 0.1}}
	b := newBandit(techs, rand.New(rand.NewSource(1)))
	// Warmup.
	b.reward(techs[0], false)
	b.reward(techs[1], false)
	b.uses["random"] = 1
	b.uses["hillclimb"] = 1
	// Reward hillclimb heavily.
	for i := 0; i < 20; i++ {
		b.reward(techs[1], true)
		b.reward(techs[0], false)
	}
	picks := map[string]int{}
	for i := 0; i < 50; i++ {
		tech := b.pick()
		picks[tech.Name()]++
		b.reward(tech, tech.Name() == "hillclimb")
	}
	if picks["hillclimb"] <= picks["random"] {
		t.Fatalf("bandit ignored credit: %v", picks)
	}
}

func TestBanditWindowSlides(t *testing.T) {
	b := newBandit(DefaultTechniques(), rand.New(rand.NewSource(1)))
	for i := 0; i < banditWindow*3; i++ {
		b.reward(Random{}, false)
	}
	if len(b.window) != banditWindow {
		t.Fatalf("window length %d, want %d", len(b.window), banditWindow)
	}
}

func TestNewValidation(t *testing.T) {
	obj := func(map[string]float64) (float64, any) { return 0, nil }
	for name, fn := range map[string]func(){
		"empty space": func() { New(nil, obj, Options{MaxEvals: 1}) },
		"nil obj":     func() { New(sphereSpace(), nil, Options{MaxEvals: 1}) },
		"no budget":   func() { New(sphereSpace(), obj, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBestBeforeRunIsZero(t *testing.T) {
	tu := New(sphereSpace(), sphere, Options{Seed: 1, MaxEvals: 1})
	if b := tu.Best(); b.Config != nil {
		t.Fatal("Best before Run should be zero")
	}
}

// The headline structural claim: on a staged objective where stage-1 work
// dominates, black-box tuning pays the full cost per sample. This test just
// pins the accounting the benchmark harness relies on.
func TestFullExecutionPerSampleAccounting(t *testing.T) {
	work := 0.0
	obj := func(cfg map[string]float64) (float64, any) {
		work += 10.0 // stage 1 (expensive preprocessing) repaid every sample
		work += 1.0  // stage 2
		return cfg["x"], nil
	}
	New(Space{{Name: "x", D: dist.Uniform(0, 1)}}, obj,
		Options{Seed: 1, Minimize: true, MaxEvals: 20}).Run()
	if work != 220 {
		t.Fatalf("work = %g, want 20 full executions * 11", work)
	}
}

func TestInitialConfigEvaluatedFirst(t *testing.T) {
	var first map[string]float64
	obj := func(cfg map[string]float64) (float64, any) {
		if first == nil {
			first = cfg
		}
		return cfg["x"], nil
	}
	tu := New(Space{
		{Name: "x", D: dist.Uniform(0, 1)},
		{Name: "y", D: dist.Uniform(0, 1)},
	}, obj, Options{
		Seed: 1, MaxEvals: 10,
		InitialConfig: map[string]float64{"x": 0.25},
	})
	tu.Run()
	if first["x"] != 0.25 {
		t.Fatalf("first eval x = %g, want the seeded default", first["x"])
	}
	if _, ok := first["y"]; !ok {
		t.Fatal("missing params must be filled in")
	}
}

func TestInitialConfigOmittedIsRandom(t *testing.T) {
	var first map[string]float64
	obj := func(cfg map[string]float64) (float64, any) {
		if first == nil {
			first = cfg
		}
		return 0, nil
	}
	New(Space{{Name: "x", D: dist.Uniform(10, 20)}}, obj,
		Options{Seed: 2, MaxEvals: 3}).Run()
	if first["x"] < 10 || first["x"] > 20 {
		t.Fatalf("first random eval out of bounds: %g", first["x"])
	}
}
