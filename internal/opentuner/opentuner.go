// Package opentuner is the black-box baseline the paper compares against:
// a reimplementation of OpenTuner's architecture (Ansel et al., PACT 2014)
// sized for these experiments. It treats the program under tuning as an
// opaque objective function — one full execution per sampled configuration —
// and searches the joint parameter space with an ensemble of techniques
// (random, hill climbing, simulated annealing / MCMC, differential
// evolution, genetic crossover) coordinated by OpenTuner's default
// multi-armed bandit meta-technique with sliding-window AUC credit
// assignment.
//
// The contrast with the white-box engine in internal/core is the point of
// the reproduction: the baseline cannot reuse a loaded dataset or a
// completed pipeline stage across samples, cannot prune a sample before it
// finishes, and must tune all stages' parameters jointly.
package opentuner

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
)

// Param is one tunable parameter of the search space.
type Param struct {
	Name string
	D    dist.Dist
}

// Space is the joint search space: the cross product of all parameters.
// Black-box tuning must sample from this whole space at once (the m^n
// configurations of Fig. 2).
type Space []Param

// Eval records one full-program evaluation.
type Eval struct {
	Config   map[string]float64
	Score    float64
	Artifact any
}

// Objective runs one full execution of the program under the given
// configuration and returns its score plus an optional artifact (e.g. the
// output image, so the driver can aggregate sample outputs the way the
// paper extends OpenTuner with majority voting).
type Objective func(cfg map[string]float64) (score float64, artifact any)

// Options configure a tuning run.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Minimize declares the score direction (default: higher is better).
	Minimize bool
	// MaxEvals caps the number of full executions. Zero means no cap;
	// then Stop must be set.
	MaxEvals int
	// Stop, if set, is polled before each evaluation; tuning ends when it
	// returns true (the work-unit budget hook).
	Stop func() bool
	// Techniques overrides the default ensemble.
	Techniques []Technique
	// Checkpoint, if set, is called after every evaluation with the
	// evaluation count and the incumbent best; the experiment harness uses
	// it to record score-vs-budget curves.
	Checkpoint func(evals int, best Eval)
	// InitialConfig, if set, is evaluated first — tuners conventionally
	// seed the search with the program's shipped defaults. Missing
	// parameters are drawn randomly.
	InitialConfig map[string]float64
}

// Technique proposes configurations. Implementations may inspect the
// evaluation history and the incumbent best.
type Technique interface {
	Name() string
	Propose(r *rand.Rand, space Space, history []Eval, best *Eval, minimize bool) map[string]float64
}

// Tuner is one black-box tuning session.
type Tuner struct {
	space   Space
	obj     Objective
	opts    Options
	r       *rand.Rand
	history []Eval
	best    *Eval
	bandit  *bandit
}

// New returns a Tuner over the given space and objective.
func New(space Space, obj Objective, opts Options) *Tuner {
	if len(space) == 0 {
		panic("opentuner: empty search space")
	}
	if obj == nil {
		panic("opentuner: nil objective")
	}
	if opts.MaxEvals <= 0 && opts.Stop == nil {
		panic("opentuner: need MaxEvals or Stop")
	}
	techniques := opts.Techniques
	if techniques == nil {
		techniques = DefaultTechniques()
	}
	return &Tuner{
		space:  space,
		obj:    obj,
		opts:   opts,
		r:      dist.NewRand(opts.Seed, 0),
		bandit: newBandit(techniques, dist.NewRand(opts.Seed, 1)),
	}
}

// DefaultTechniques returns the standard ensemble, mirroring OpenTuner's
// default meta-technique population.
func DefaultTechniques() []Technique {
	return []Technique{
		Random{},
		HillClimb{Scale: 0.1},
		Anneal{Scale: 0.25, Temp: 0.5},
		DifferentialEvolution{F: 0.8, CR: 0.9},
		Genetic{MutRate: 0.15, Scale: 0.2},
	}
}

// Run tunes until MaxEvals or Stop and returns the best evaluation found.
// It panics if no evaluation ran at all.
func (t *Tuner) Run() Eval {
	for {
		if t.opts.MaxEvals > 0 && len(t.history) >= t.opts.MaxEvals {
			break
		}
		if t.opts.Stop != nil && t.opts.Stop() {
			break
		}
		var cfg map[string]float64
		var tech Technique
		if len(t.history) == 0 && t.opts.InitialConfig != nil {
			tech = Random{} // credit the seeding eval to the random arm
			cfg = drawAll(t.r, t.space)
			for k, v := range t.opts.InitialConfig {
				cfg[k] = v
			}
		} else {
			tech = t.bandit.pick()
			cfg = tech.Propose(t.r, t.space, t.history, t.best, t.opts.Minimize)
		}
		score, artifact := t.obj(cfg)
		ev := Eval{Config: cfg, Score: score, Artifact: artifact}
		t.history = append(t.history, ev)
		isBest := t.best == nil || better(score, t.best.Score, t.opts.Minimize)
		if isBest {
			e := ev
			t.best = &e
		}
		t.bandit.reward(tech, isBest)
		if t.opts.Checkpoint != nil {
			t.opts.Checkpoint(len(t.history), *t.best)
		}
	}
	if t.best == nil {
		panic("opentuner: no evaluations ran (budget exhausted before start?)")
	}
	return *t.best
}

// Best returns the incumbent best evaluation (zero Eval before Run).
func (t *Tuner) Best() Eval {
	if t.best == nil {
		return Eval{}
	}
	return *t.best
}

// History returns all evaluations in order.
func (t *Tuner) History() []Eval { return t.history }

// Evals reports how many full executions ran.
func (t *Tuner) Evals() int { return len(t.history) }

func better(a, b float64, minimize bool) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	if minimize {
		return a < b
	}
	return a > b
}

// drawAll samples a full random configuration.
func drawAll(r *rand.Rand, space Space) map[string]float64 {
	cfg := make(map[string]float64, len(space))
	for _, p := range space {
		cfg[p.Name] = p.D.Draw(r)
	}
	return cfg
}

// Random proposes uniform random configurations.
type Random struct{}

// Name implements Technique.
func (Random) Name() string { return "random" }

// Propose implements Technique.
func (Random) Propose(r *rand.Rand, space Space, _ []Eval, _ *Eval, _ bool) map[string]float64 {
	return drawAll(r, space)
}

// HillClimb perturbs the incumbent best configuration.
type HillClimb struct{ Scale float64 }

// Name implements Technique.
func (HillClimb) Name() string { return "hillclimb" }

// Propose implements Technique.
func (h HillClimb) Propose(r *rand.Rand, space Space, _ []Eval, best *Eval, _ bool) map[string]float64 {
	if best == nil {
		return drawAll(r, space)
	}
	cfg := make(map[string]float64, len(space))
	for _, p := range space {
		cfg[p.Name] = p.D.Perturb(r, best.Config[p.Name], h.Scale)
	}
	return cfg
}

// Anneal is a simulated-annealing / MCMC walker: it perturbs the most
// recent evaluation (accepted or not), with a wider proposal than
// HillClimb, escaping local optima the way OpenTuner's PSO/annealing
// components do.
type Anneal struct {
	Scale float64
	Temp  float64
}

// Name implements Technique.
func (Anneal) Name() string { return "anneal" }

// Propose implements Technique.
func (a Anneal) Propose(r *rand.Rand, space Space, history []Eval, best *Eval, minimize bool) map[string]float64 {
	if len(history) == 0 {
		return drawAll(r, space)
	}
	// Walk from the last point, or restart from best with probability Temp.
	base := history[len(history)-1].Config
	if best != nil && r.Float64() < a.Temp {
		base = best.Config
	}
	cfg := make(map[string]float64, len(space))
	for _, p := range space {
		cfg[p.Name] = p.D.Perturb(r, base[p.Name], a.Scale)
	}
	return cfg
}

// DifferentialEvolution proposes best + F*(a-b) using two random history
// points, with crossover rate CR against the incumbent.
type DifferentialEvolution struct {
	F  float64
	CR float64
}

// Name implements Technique.
func (DifferentialEvolution) Name() string { return "de" }

// Propose implements Technique.
func (d DifferentialEvolution) Propose(r *rand.Rand, space Space, history []Eval, best *Eval, _ bool) map[string]float64 {
	if len(history) < 3 || best == nil {
		return drawAll(r, space)
	}
	a := history[r.Intn(len(history))].Config
	b := history[r.Intn(len(history))].Config
	cfg := make(map[string]float64, len(space))
	for _, p := range space {
		if r.Float64() < d.CR {
			cfg[p.Name] = p.D.Clamp(best.Config[p.Name] + d.F*(a[p.Name]-b[p.Name]))
		} else {
			cfg[p.Name] = best.Config[p.Name]
		}
	}
	return cfg
}

// Genetic crosses two parents biased toward good history entries and
// mutates.
type Genetic struct {
	MutRate float64
	Scale   float64
}

// Name implements Technique.
func (Genetic) Name() string { return "ga" }

// Propose implements Technique.
func (g Genetic) Propose(r *rand.Rand, space Space, history []Eval, best *Eval, minimize bool) map[string]float64 {
	if len(history) < 2 {
		return drawAll(r, space)
	}
	pick := func() map[string]float64 {
		// Tournament of 2.
		a := history[r.Intn(len(history))]
		b := history[r.Intn(len(history))]
		if better(a.Score, b.Score, minimize) {
			return a.Config
		}
		return b.Config
	}
	p1, p2 := pick(), pick()
	cfg := make(map[string]float64, len(space))
	for _, p := range space {
		v := p1[p.Name]
		if r.Intn(2) == 1 {
			v = p2[p.Name]
		}
		if r.Float64() < g.MutRate {
			v = p.D.Perturb(r, v, g.Scale)
		}
		cfg[p.Name] = p.D.Clamp(v)
	}
	return cfg
}

// bandit is the multi-armed bandit meta-technique: sliding-window AUC
// credit plus an exploration bonus (OpenTuner's default).
type bandit struct {
	techs  []Technique
	r      *rand.Rand
	window []banditUse // sliding window of recent uses
	uses   map[string]int
	total  int
}

type banditUse struct {
	name    string
	newBest bool
}

const banditWindow = 50

// banditC is the exploration constant of the UCB term.
const banditC = 0.3

func newBandit(techs []Technique, r *rand.Rand) *bandit {
	if len(techs) == 0 {
		panic("opentuner: no techniques")
	}
	return &bandit{techs: techs, r: r, uses: make(map[string]int)}
}

func (b *bandit) pick() Technique {
	// Use each technique once before trusting the statistics.
	for _, t := range b.techs {
		if b.uses[t.Name()] == 0 {
			return t
		}
	}
	bestScore := math.Inf(-1)
	var best Technique
	for _, t := range b.techs {
		score := b.credit(t.Name()) +
			banditC*math.Sqrt(2*math.Log(float64(b.total+1))/float64(b.uses[t.Name()]))
		// Deterministic small jitter breaks ties without biasing.
		score += b.r.Float64() * 1e-9
		if score > bestScore {
			bestScore = score
			best = t
		}
	}
	return best
}

// credit is the AUC credit: within the sliding window, uses of the
// technique that produced a new global best earn weight proportional to
// their recency.
func (b *bandit) credit(name string) float64 {
	num, den := 0.0, 0.0
	for i, u := range b.window {
		w := float64(i + 1) // more recent -> higher weight
		if u.name == name {
			den += w
			if u.newBest {
				num += w
			}
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func (b *bandit) reward(t Technique, newBest bool) {
	b.window = append(b.window, banditUse{name: t.Name(), newBest: newBest})
	if len(b.window) > banditWindow {
		b.window = b.window[1:]
	}
	b.uses[t.Name()]++
	b.total++
}

// String summarizes bandit state for logs.
func (b *bandit) String() string {
	return fmt.Sprintf("bandit{total: %d}", b.total)
}
