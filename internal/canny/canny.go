// Package canny implements the Canny edge detector (Canny 1986), the
// paper's running example (Fig. 4). The detector is deliberately exposed
// stage by stage — Gaussian smoothing, gradient computation, non-maximal
// suppression, hysteresis edge traversal — because the staged structure is
// exactly what white-box tuning exploits: sigma only matters up to the
// smoothing stage, low/high only matter in the traversal stage.
//
// Work-unit costs per stage (relative, calibrated to the paper's
// observation that "most of its computation time was spent on the expensive
// image loading, Gaussian smoothing, and gradient computation stages"):
// load 4, smooth 4, gradient 2, traversal 1.
package canny

import (
	"math"

	"repro/internal/img"
	"repro/internal/stats"
)

// Params are Canny's three tunable parameters: the smoothing sigma and the
// low/high hysteresis thresholds (fractions of the maximum gradient).
type Params struct {
	Sigma float64
	Low   float64
	High  float64
}

// DefaultParams is the untuned configuration used for the "native" rows of
// the experiments.
func DefaultParams() Params { return Params{Sigma: 1.0, Low: 0.3, High: 0.6} }

// Work-unit costs of each stage; the experiment harness charges these
// against the tuning budget.
const (
	WorkLoad     = 20.0
	WorkSmooth   = 4.0
	WorkGradient = 2.0
	WorkTraverse = 1.0
)

// Gradient is the output of the image transformation stage: gradient
// magnitudes and the non-maximally-suppressed magnitudes.
type Gradient struct {
	Mag img.Image
	NMS img.Image
}

// SmoothStage is stage 1: Gaussian smoothing with sigma.
func SmoothStage(in img.Image, sigma float64) img.Image {
	return img.Smooth(in, sigma)
}

// GradientStage is stage 2: Sobel gradients plus non-maximal suppression.
func GradientStage(sm img.Image) Gradient {
	mag, dir := img.Sobel(sm)
	nms := nonMaxSuppress(mag, dir)
	return Gradient{Mag: mag, NMS: nms}
}

// NominalGradient is the absolute gradient scale the thresholds refer to:
// the Sobel response of a unit-contrast step edge. Real Canny
// implementations (OpenCV, Matlab) use absolute thresholds like this —
// which is precisely why a fixed (low, high) fails when scene contrast
// varies, the paper's Fig. 1 motivation.
const NominalGradient = 4.0

// TraverseStage is stage 3: hysteresis edge traversal. low and high are
// fractions of NominalGradient; pixels above high seed edges, pixels above
// low extend them. The result is a binary image.
func TraverseStage(g Gradient, low, high float64) img.Image {
	if low > high {
		low, high = high, low
	}
	hi := high * NominalGradient
	lo := low * NominalGradient
	w, h := g.NMS.W, g.NMS.H
	out := img.New(w, h)
	// Seed strong edges, then BFS through weak-but-connected pixels.
	var queue []int
	for i, v := range g.NMS.Pix {
		if v >= hi && hi > 0 {
			out.Pix[i] = 1
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		x, y := i%w, i/w
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := x+dx, y+dy
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if out.Pix[j] == 0 && g.NMS.Pix[j] >= lo && lo > 0 {
					out.Pix[j] = 1
					queue = append(queue, j)
				}
			}
		}
	}
	return out
}

// Detect runs the full pipeline: smoothing, gradients, traversal.
func Detect(in img.Image, p Params) img.Image {
	sm := SmoothStage(in, p.Sigma)
	g := GradientStage(sm)
	return TraverseStage(g, p.Low, p.High)
}

// nonMaxSuppress keeps only pixels that are local maxima of the gradient
// magnitude along the gradient direction (quantized to 4 directions).
func nonMaxSuppress(mag, dir img.Image) img.Image {
	out := img.New(mag.W, mag.H)
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			v := mag.At(x, y)
			if v == 0 {
				continue
			}
			// Quantize direction to 0, 45, 90, 135 degrees.
			a := dir.At(x, y)
			if a < 0 {
				a += math.Pi
			}
			sector := int(math.Floor(a/(math.Pi/4)+0.5)) % 4
			var n1, n2 float64
			switch sector {
			case 0: // horizontal gradient -> compare left/right
				n1, n2 = mag.At(x-1, y), mag.At(x+1, y)
			case 1: // 45°
				n1, n2 = mag.At(x-1, y-1), mag.At(x+1, y+1)
			case 2: // vertical gradient -> compare up/down
				n1, n2 = mag.At(x, y-1), mag.At(x, y+1)
			default: // 135°
				n1, n2 = mag.At(x+1, y-1), mag.At(x-1, y+1)
			}
			if v >= n1 && v >= n2 {
				out.Pix[y*mag.W+x] = v
			}
		}
	}
	return out
}

// Score compares a detected edge map against the ground truth with SSIM,
// the metric the paper uses for Canny (higher is better).
func Score(edges, truth img.Image) float64 {
	return stats.SSIM(edges.Pix, truth.Pix, truth.W)
}

// GradEnergy is the mean Sobel gradient magnitude of an image.
func GradEnergy(m img.Image) float64 {
	mag, _ := img.Sobel(m)
	energy := 0.0
	for _, v := range mag.Pix {
		energy += v
	}
	return energy / float64(len(m.Pix))
}

// WellSmoothed implements the AggregateGaussian pruning heuristic of the
// running example (after Kerouh's no-reference blur measure): a smoothed
// image is acceptable when it removed a meaningful share of the raw
// high-frequency energy without destroying it — under-smoothed samples
// keep nearly all the noise energy (ratio near 1), over-smoothed samples
// collapse toward zero. The ratio form is invariant to scene contrast.
func WellSmoothed(sm, raw img.Image) bool {
	er := GradEnergy(raw)
	if er == 0 {
		return false
	}
	ratio := GradEnergy(sm) / er
	return ratio > 0.18 && ratio < 0.88
}
