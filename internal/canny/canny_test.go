package canny

import (
	"testing"

	"repro/internal/img"
)

func square(w int) img.Image {
	m := img.New(w, w)
	for y := w / 4; y < 3*w/4; y++ {
		for x := w / 4; x < 3*w/4; x++ {
			m.Set(x, y, 0.9)
		}
	}
	return m
}

func TestDetectFindsSquareOutline(t *testing.T) {
	m := square(32)
	edges := Detect(m, Params{Sigma: 1.0, Low: 0.2, High: 0.5})
	n := edges.CountAbove(0.5)
	if n < 40 {
		t.Fatalf("only %d edge pixels on a 16x16 square outline", n)
	}
	if n > 200 {
		t.Fatalf("%d edge pixels — detector fires everywhere", n)
	}
	// Edge pixels should hug the square boundary, not the interior center.
	if edges.At(16, 16) != 0 {
		t.Fatal("interior of the square flagged as edge")
	}
}

func TestDetectOnBlankImage(t *testing.T) {
	edges := Detect(img.New(24, 24), DefaultParams())
	if edges.CountAbove(0.5) != 0 {
		t.Fatal("edges detected in a constant image")
	}
}

func TestTraverseThresholdOrderingForgiven(t *testing.T) {
	m := square(32)
	g := GradientStage(SmoothStage(m, 1))
	a := TraverseStage(g, 0.2, 0.6)
	b := TraverseStage(g, 0.6, 0.2) // swapped: must behave identically
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("swapped low/high changed the result")
		}
	}
}

func TestLowerLowThresholdNeverFindsFewerEdges(t *testing.T) {
	ds := img.GenDataset("mug", 48, 48, 1)
	g := GradientStage(SmoothStage(ds.Noisy, 1.2))
	prev := -1
	for _, low := range []float64{0.6, 0.4, 0.2, 0.1} {
		n := TraverseStage(g, low, 0.6).CountAbove(0.5)
		if prev >= 0 && n < prev {
			t.Fatalf("lowering low threshold reduced edges: %d -> %d", prev, n)
		}
		prev = n
	}
}

func TestHigherHighThresholdNeverFindsMoreEdges(t *testing.T) {
	ds := img.GenDataset("mug", 48, 48, 1)
	g := GradientStage(SmoothStage(ds.Noisy, 1.2))
	prev := -1
	for _, high := range []float64{0.3, 0.5, 0.7, 0.9} {
		n := TraverseStage(g, 0.1, high).CountAbove(0.5)
		if prev >= 0 && n > prev {
			t.Fatalf("raising high threshold increased edges: %d -> %d", prev, n)
		}
		prev = n
	}
}

func TestStagedEqualsMonolithic(t *testing.T) {
	ds := img.GenDataset("wrench", 48, 48, 2)
	p := Params{Sigma: 1.4, Low: 0.25, High: 0.55}
	direct := Detect(ds.Noisy, p)
	staged := TraverseStage(GradientStage(SmoothStage(ds.Noisy, p.Sigma)), p.Low, p.High)
	for i := range direct.Pix {
		if direct.Pix[i] != staged.Pix[i] {
			t.Fatal("staged pipeline diverges from Detect")
		}
	}
}

func TestScoreOrdering(t *testing.T) {
	ds := img.GenDataset("coffeemaker", 64, 64, 3)
	perfect := Score(ds.Truth, ds.Truth)
	blank := Score(img.New(64, 64), ds.Truth)
	reasonable := Score(Detect(ds.Noisy, Params{Sigma: 1.2, Low: 0.2, High: 0.45}), ds.Truth)
	if perfect < 0.999 {
		t.Fatalf("perfect score %g", perfect)
	}
	if !(reasonable > blank) {
		t.Fatalf("reasonable detection (%g) should beat blank output (%g)", reasonable, blank)
	}
}

func TestParametersMatter(t *testing.T) {
	// The motivation of the paper: different parameter settings give
	// meaningfully different scores on the same image.
	ds := img.GenDataset("trashcan", 64, 64, 4)
	good := Score(Detect(ds.Noisy, Params{Sigma: 1.2, Low: 0.08, High: 0.25}), ds.Truth)
	bad := Score(Detect(ds.Noisy, Params{Sigma: 4.5, Low: 0.85, High: 0.95}), ds.Truth)
	if good-bad < 0.02 {
		t.Fatalf("parameters barely matter: good=%g bad=%g", good, bad)
	}
}

func TestWellSmoothedBand(t *testing.T) {
	ds := img.GenDataset("pitcher", 64, 64, 5)
	over := SmoothStage(ds.Noisy, 8.0) // destroyed detail
	if WellSmoothed(over, ds.Noisy) {
		t.Fatal("over-smoothed image accepted")
	}
	under := SmoothStage(ds.Noisy, 0.2) // barely touched the noise
	if WellSmoothed(under, ds.Noisy) {
		t.Fatal("under-smoothed image accepted")
	}
	ok := SmoothStage(ds.Noisy, 1.5)
	if !WellSmoothed(ok, ds.Noisy) {
		t.Fatal("reasonably smoothed image rejected")
	}
}

func TestNonMaxSuppressionThinsEdges(t *testing.T) {
	ds := img.GenDataset("hammer", 48, 48, 6)
	sm := SmoothStage(ds.Noisy, 1.2)
	g := GradientStage(sm)
	rawAbove := g.Mag.CountAbove(0.2 * g.Mag.MaxPix())
	nmsAbove := g.NMS.CountAbove(0.2 * g.Mag.MaxPix())
	if nmsAbove >= rawAbove {
		t.Fatalf("NMS did not thin: %d -> %d", rawAbove, nmsAbove)
	}
	if nmsAbove == 0 {
		t.Fatal("NMS removed everything")
	}
}
