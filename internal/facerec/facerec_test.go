package facerec

import (
	"testing"
)

func gen() Dataset { return Gen(1, 10, 32, 5, 0.2) }

func TestGenShape(t *testing.T) {
	ds := gen()
	if len(ds.Gallery) != 10 {
		t.Fatalf("gallery size %d", len(ds.Gallery))
	}
	if len(ds.Probes) != 50+10 { // 10 subjects * 5 probes + 20% impostors
		t.Fatalf("probes %d", len(ds.Probes))
	}
	impostors := 0
	for _, id := range ds.ProbeIDs {
		if id == -1 {
			impostors++
		}
	}
	if impostors != 10 {
		t.Fatalf("impostors %d", impostors)
	}
}

func TestGenDeterministic(t *testing.T) {
	a := Gen(5, 4, 16, 2, 0)
	b := Gen(5, 4, 16, 2, 0)
	for i := range a.Gallery {
		for d := range a.Gallery[i] {
			if a.Gallery[i][d] != b.Gallery[i][d] {
				t.Fatal("Gen not deterministic")
			}
		}
	}
}

// bestThreshold sweeps the rejection threshold for a component count and
// returns the best error — the search the tuner automates.
func bestThreshold(ds Dataset, comps int) (thr, err float64) {
	err = 2
	for _, cand := range []float64{1, 2, 3, 4, 5, 6, 8, 12} {
		e := Error(ds, Train(ds, Params{Components: comps, Exponent: 2, Threshold: cand}))
		if e < err {
			thr, err = cand, e
		}
	}
	return thr, err
}

func TestGoodParamsBeatDefault(t *testing.T) {
	ds := gen()
	// Default keeps only 8 of 32 dims with an effectively infinite
	// threshold: impostors are never rejected, so the error floor is the
	// impostor fraction.
	defErr := Error(ds, Train(ds, DefaultParams()))
	_, tunedErr := bestThreshold(ds, 16)
	if tunedErr >= defErr {
		t.Fatalf("tuned error %g >= default %g", tunedErr, defErr)
	}
}

func TestComponentsAndThresholdInteract(t *testing.T) {
	// Adding the nuisance dimensions inflates every distance, so the
	// threshold tuned for 16 components rejects genuines at 32 — the kind
	// of cross-stage parameter interaction that makes joint tuning hard
	// for a black box.
	ds := gen()
	thr, goodErr := bestThreshold(ds, 16)
	allErr := Error(ds, Train(ds, Params{Components: 32, Exponent: 2, Threshold: thr}))
	if allErr <= goodErr {
		t.Fatalf("nuisance dims at the 16-comp threshold should hurt: all=%g good=%g", allErr, goodErr)
	}
}

func TestThresholdTradesOffImpostors(t *testing.T) {
	ds := gen()
	// A tiny threshold rejects everyone: every genuine probe errors, every
	// impostor is correct.
	m := Train(ds, Params{Components: 16, Exponent: 2, Threshold: 1e-6})
	genuine := 0
	for _, id := range ds.ProbeIDs {
		if id >= 0 {
			genuine++
		}
	}
	wantErr := float64(genuine) / float64(len(ds.Probes))
	if got := Error(ds, m); got != wantErr {
		t.Fatalf("tiny threshold error = %g, want %g", got, wantErr)
	}
}

func TestParamClamping(t *testing.T) {
	ds := Gen(2, 3, 8, 2, 0)
	// Components out of range and absurd exponent must be clamped, not
	// crash.
	m := Train(ds, Params{Components: 99, Exponent: 0.01, Threshold: 1e9})
	if got := m.Identify(ds.Probes[0]); got < 0 || got >= 3 {
		t.Fatalf("Identify returned %d", got)
	}
	m2 := Train(ds, Params{Components: 0, Exponent: 2, Threshold: 1e9})
	_ = Error(ds, m2)
}

func TestGenValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gen(1, 1, 8, 2, 0)
}

func TestIdentifyPerfectOnEnrollment(t *testing.T) {
	ds := Gen(3, 6, 24, 3, 0)
	m := Train(ds, Params{Components: 12, Exponent: 2, Threshold: 1e9})
	// The gallery vectors themselves must identify as their subjects.
	for s, g := range ds.Gallery {
		if got := m.Identify(g); got != s {
			t.Fatalf("enrollment vector of subject %d identified as %d", s, got)
		}
	}
}
