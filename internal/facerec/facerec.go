// Package facerec implements a subspace face-identification pipeline in the
// style of the CSU face identification evaluation system (Bolme et al.),
// the paper's Face Rec benchmark. Faces are feature vectors; the gallery
// defines per-subject prototypes; probes are identified by nearest
// prototype in a variance-ranked subspace. The three tunable parameters are
// the subspace dimensionality, the Minkowski distance exponent, and the
// rejection threshold (probes farther than it from every prototype are
// rejected as impostors). The score is the identification error rate
// (lower is better, aggregated with MIN).
package facerec

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/dist"
)

// Params are the recognizer's tunables.
type Params struct {
	Components int     // subspace dimensionality (top-variance features)
	Exponent   float64 // Minkowski distance exponent p
	Threshold  float64 // rejection distance
}

// DefaultParams is the untuned configuration.
func DefaultParams() Params { return Params{Components: 8, Exponent: 2, Threshold: 1e9} }

// WorkTrain and WorkPerProbe are the work-unit costs: building the gallery
// model is the expensive preprocessing stage, probing is cheap.
const (
	WorkTrain    = 15.0
	WorkPerProbe = 0.05
)

// Dataset is a face identification workload.
type Dataset struct {
	Dim      int
	Gallery  [][]float64 // one enrollment vector per subject
	Probes   [][]float64
	ProbeIDs []int // subject of each probe; -1 marks an impostor
}

// Gen builds a synthetic workload: subjects are random prototypes, genuine
// probes are noisy copies, impostors are fresh random vectors. A block of
// nuisance dimensions carries pure noise, so keeping too many components
// hurts — that is what makes Components worth tuning.
func Gen(seed int64, subjects, dim, probesPerSubject int, impostorFrac float64) Dataset {
	if subjects < 2 || dim < 4 {
		panic("facerec: need >= 2 subjects and >= 4 dims")
	}
	r := rand.New(rand.NewSource(int64(dist.Mix(uint64(seed), 0xFACE))))
	signalDims := dim / 2 // the rest is nuisance noise
	ds := Dataset{Dim: dim}
	protos := make([][]float64, subjects)
	for s := range protos {
		p := make([]float64, dim)
		for d := 0; d < signalDims; d++ {
			p[d] = r.NormFloat64() * 2
		}
		protos[s] = p
		enroll := perturb(r, p, signalDims, 0.3)
		ds.Gallery = append(ds.Gallery, enroll)
	}
	for s := range protos {
		for i := 0; i < probesPerSubject; i++ {
			ds.Probes = append(ds.Probes, perturb(r, protos[s], signalDims, 0.4))
			ds.ProbeIDs = append(ds.ProbeIDs, s)
		}
	}
	nImp := int(float64(len(ds.Probes)) * impostorFrac)
	for i := 0; i < nImp; i++ {
		imp := make([]float64, dim)
		for d := 0; d < signalDims; d++ {
			imp[d] = r.NormFloat64() * 2
		}
		addNuisance(r, imp, signalDims)
		ds.Probes = append(ds.Probes, imp)
		ds.ProbeIDs = append(ds.ProbeIDs, -1)
	}
	return ds
}

func perturb(r *rand.Rand, p []float64, signalDims int, sigma float64) []float64 {
	out := make([]float64, len(p))
	for d := 0; d < signalDims; d++ {
		out[d] = p[d] + r.NormFloat64()*sigma
	}
	addNuisance(r, out, signalDims)
	return out
}

// addNuisance fills the non-signal dimensions with noise. Its per-dimension
// variance (1) is below the signal variance (~4), so variance ranking finds
// the signal dims first — but any nuisance dim that is kept adds identical
// noise to every comparison and dilutes discrimination, which is what makes
// Components worth tuning.
func addNuisance(r *rand.Rand, v []float64, signalDims int) {
	for d := signalDims; d < len(v); d++ {
		v[d] = r.NormFloat64()
	}
}

// Model is a trained recognizer: the selected feature subset plus the
// gallery projected into it.
type Model struct {
	dims    []int
	gallery [][]float64
	p       Params
}

// Train ranks features by gallery variance, keeps the top Components, and
// projects the gallery. This is the expensive stage white-box tuning reuses.
func Train(ds Dataset, p Params) *Model {
	if p.Components < 1 {
		p.Components = 1
	}
	if p.Components > ds.Dim {
		p.Components = ds.Dim
	}
	if p.Exponent < 0.25 {
		p.Exponent = 0.25
	}
	vars := make([]float64, ds.Dim)
	for d := 0; d < ds.Dim; d++ {
		mean := 0.0
		for _, g := range ds.Gallery {
			mean += g[d]
		}
		mean /= float64(len(ds.Gallery))
		for _, g := range ds.Gallery {
			vars[d] += (g[d] - mean) * (g[d] - mean)
		}
	}
	idx := make([]int, ds.Dim)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vars[idx[a]] > vars[idx[b]] })
	dims := idx[:p.Components]

	m := &Model{dims: append([]int(nil), dims...), p: p}
	for _, g := range ds.Gallery {
		m.gallery = append(m.gallery, project(g, m.dims))
	}
	return m
}

func project(v []float64, dims []int) []float64 {
	out := make([]float64, len(dims))
	for i, d := range dims {
		out[i] = v[d]
	}
	return out
}

// Identify classifies one probe: the nearest gallery subject, or -1 when
// the distance exceeds the rejection threshold.
func (m *Model) Identify(probe []float64) int {
	pv := project(probe, m.dims)
	best, bestD := -1, math.Inf(1)
	for s, g := range m.gallery {
		if d := minkowski(pv, g, m.p.Exponent); d < bestD {
			best, bestD = s, d
		}
	}
	if bestD > m.p.Threshold {
		return -1
	}
	return best
}

func minkowski(a, b []float64, p float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(s, 1/p)
}

// Error runs every probe and returns the identification error rate: a
// genuine probe must be identified as its subject, an impostor must be
// rejected. Lower is better.
func Error(ds Dataset, m *Model) float64 {
	wrong := 0
	for i, probe := range ds.Probes {
		if m.Identify(probe) != ds.ProbeIDs[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(ds.Probes))
}
